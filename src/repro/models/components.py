"""Shared model components: the embedding layer and wide&deep towers.

The Embedding Layer of Fig. 3 is shared by the CTR task and the CVR
task: each sparse feature owns a lookup table; deep and wide feature
embeddings are concatenated separately (Section III-A).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.autograd import ops
from repro.autograd.tensor import Tensor
from repro.data.dataset import Batch
from repro.data.schema import FeatureSchema
from repro.nn.embedding import Embedding
from repro.nn.linear import Linear
from repro.nn.mlp import MLP
from repro.nn.module import Module


class FeatureEmbedding(Module):
    """Embeds a batch into ``(deep_vector, wide_vector)``.

    Sparse features are embedded via per-feature lookup tables; dense
    features are appended raw.  ``wide_vector`` is ``None`` when the
    schema has no wide features, in which case downstream towers
    degenerate to a pure deep structure (Section III-A).
    """

    def __init__(
        self, schema: FeatureSchema, embedding_dim: int, rng: np.random.Generator
    ) -> None:
        super().__init__()
        if embedding_dim < 1:
            raise ValueError(f"embedding_dim must be >= 1, got {embedding_dim}")
        self.schema = schema
        self.embedding_dim = embedding_dim
        self.tables: Dict[str, Embedding] = {
            feature.name: Embedding(feature.vocab_size, embedding_dim, rng)
            for feature in schema.sparse
        }
        self.deep_width = schema.embedded_width(embedding_dim, "deep")
        self.wide_width = schema.embedded_width(embedding_dim, "wide")

    def forward(self, batch: Batch) -> Tuple[Tensor, Optional[Tensor]]:
        deep_parts = []
        wide_parts = []
        for feature in self.schema.sparse:
            embedded = self.tables[feature.name](batch.sparse[feature.name])
            (deep_parts if feature.kind == "deep" else wide_parts).append(embedded)
        for feature in self.schema.dense:
            column = np.asarray(batch.dense[feature.name], dtype=float)
            if column.ndim == 1:
                column = column[:, None]
            part = Tensor(column)
            (deep_parts if feature.kind == "deep" else wide_parts).append(part)
        deep = ops.concat(deep_parts, axis=1) if deep_parts else None
        wide = ops.concat(wide_parts, axis=1) if wide_parts else None
        if deep is None:
            raise ValueError("schema produced no deep features")
        return deep, wide


class WideDeepTower(Module):
    """A wide&deep prediction tower producing one logit per sample.

    ``logit = phi(wide; theta_w) + psi(deep; theta_d)`` as in Eq. (12):
    a generalized linear part over the wide embedding plus an MLP over
    the deep embedding.  With no wide input the tower is a pure MLP.
    """

    def __init__(
        self,
        deep_width: int,
        wide_width: int,
        hidden_sizes,
        rng: np.random.Generator,
        activation: str = "relu",
        dropout: float = 0.0,
    ) -> None:
        super().__init__()
        self.deep = MLP(
            deep_width,
            list(hidden_sizes),
            rng,
            activation=activation,
            out_features=1,
            dropout=dropout,
        )
        self.wide: Optional[Linear] = (
            Linear(wide_width, 1, rng, weight_init="xavier_uniform")
            if wide_width > 0
            else None
        )

    def forward(self, deep: Tensor, wide: Optional[Tensor]) -> Tensor:
        logit = self.deep(deep)
        if self.wide is not None and wide is not None:
            logit = logit + self.wide(wide)
        return ops.squeeze(logit, axis=1)


def probability(logit: Tensor) -> Tensor:
    """Sigmoid head shared by all towers."""
    return ops.sigmoid(logit)
