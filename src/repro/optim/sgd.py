"""Stochastic gradient descent with optional momentum."""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

import numpy as np

from repro.autograd.sparse import SparseRowGrad
from repro.nn.module import Parameter
from repro.optim.optimizer import (
    Optimizer,
    _active_rows_from_moments,
    _instrument_step,
)


class SGD(Optimizer):
    """Vanilla/momentum SGD.

    Sparse row-gradients: without momentum the update only touches the
    gradient's rows (``p[rows] -= lr * values``), which is trivially
    bit-exact to the dense update.  With momentum the velocity of every
    previously-touched row keeps decaying, so the same active-row-mask
    scheme as :class:`~repro.optim.adam.Adam` is used.

    Parameters
    ----------
    params:
        Trainable parameters.
    lr:
        Learning rate.
    momentum:
        Classic momentum coefficient (0 disables).
    weight_decay:
        L2 coefficient folded into gradients.
    """

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, weight_decay)
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params]
        self._active: List[Optional[np.ndarray]] = [None] * len(self.params)

    def state_dict(self) -> Dict[str, Any]:
        state = super().state_dict()
        state.update(
            lr=self.lr,
            momentum=self.momentum,
            velocity=[v.copy() for v in self._velocity],
        )
        return state

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        super().load_state_dict(state)
        self.lr = float(state["lr"])
        self.momentum = float(state["momentum"])
        self._load_moments(state["velocity"], self._velocity)
        self._active = [None] * len(self.params)

    @_instrument_step
    def step(self) -> None:
        for i, p in enumerate(self.params):
            grad = self._grad(p)
            if isinstance(grad, SparseRowGrad):
                self._sparse_update(i, p, grad)
                continue
            if self.momentum:
                v = self._velocity[i]
                v *= self.momentum
                v += grad
                grad = v
            p.data -= self.lr * grad

    def _sparse_update(self, i: int, p: Parameter, grad: SparseRowGrad) -> None:
        if not self.momentum:
            p.data[grad.indices] -= self.lr * grad.values
            return
        v = self._velocity[i]
        mask = self._active[i]
        if mask is None:
            mask = self._active[i] = _active_rows_from_moments((v,))
        mask[grad.indices] = True
        rows = np.nonzero(mask)[0]
        if 2 * rows.size > mask.size:
            dense = grad.to_dense()
            v *= self.momentum
            v += dense
            p.data -= self.lr * v
            return
        g = np.zeros((rows.size,) + p.data.shape[1:], dtype=p.data.dtype)
        g[np.searchsorted(rows, grad.indices)] = grad.values
        vr = v[rows]
        vr *= self.momentum
        vr += g
        v[rows] = vr
        p.data[rows] -= self.lr * vr
