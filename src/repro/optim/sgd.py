"""Stochastic gradient descent with optional momentum."""

from __future__ import annotations

from typing import Any, Dict, Iterable

import numpy as np

from repro.nn.module import Parameter
from repro.optim.optimizer import Optimizer


class SGD(Optimizer):
    """Vanilla/momentum SGD.

    Parameters
    ----------
    params:
        Trainable parameters.
    lr:
        Learning rate.
    momentum:
        Classic momentum coefficient (0 disables).
    weight_decay:
        L2 coefficient folded into gradients.
    """

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, weight_decay)
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def state_dict(self) -> Dict[str, Any]:
        state = super().state_dict()
        state.update(
            lr=self.lr,
            momentum=self.momentum,
            velocity=[v.copy() for v in self._velocity],
        )
        return state

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        super().load_state_dict(state)
        self.lr = float(state["lr"])
        self.momentum = float(state["momentum"])
        self._load_moments(state["velocity"], self._velocity)

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            grad = self._grad(p)
            if self.momentum:
                v *= self.momentum
                v += grad
                grad = v
            p.data -= self.lr * grad
