"""Optimizers for the autograd engine.

The paper trains every model with Adam (learning rate 0.001, Section
IV-A2); SGD is provided for tests and ablations.  L2 weight decay
implements the ``lambda_2 ||theta||^2`` term of Eq. (14) efficiently
(added to gradients rather than materialised in the loss graph).
"""

from repro.optim.optimizer import Optimizer, clip_global_norm
from repro.optim.sgd import SGD
from repro.optim.adam import Adam
from repro.optim.schedulers import ExponentialDecay, LinearWarmup, Scheduler, StepDecay

__all__ = [
    "Optimizer",
    "SGD",
    "Adam",
    "clip_global_norm",
    "Scheduler",
    "StepDecay",
    "ExponentialDecay",
    "LinearWarmup",
]
