"""Optimizer base class and gradient utilities.

Gradients arriving from the autograd engine are either dense numpy
arrays or :class:`~repro.autograd.sparse.SparseRowGrad` objects (emitted
by ``take_rows`` for embedding tables when sparse gradients are on).
The utilities here -- weight-decay folding and global-norm clipping --
handle both forms; the concrete optimizers dispatch per parameter.
"""

from __future__ import annotations

import functools
import time
from typing import Any, Dict, Iterable, List, Sequence, Union

import numpy as np

from repro.autograd.sparse import SparseRowGrad
from repro.nn.module import Parameter
from repro.perf.profiler import active as _profiler_active

Grad = Union[np.ndarray, SparseRowGrad]


def _instrument_step(fn):
    """Report optimizer updates to the profiler as pseudo-op ``optimizer.step``."""

    @functools.wraps(fn)
    def wrapper(self):
        profiler = _profiler_active()
        if profiler is None:
            return fn(self)
        started = time.perf_counter()
        out = fn(self)
        profiler.record(
            "optimizer.step",
            time.perf_counter() - started,
            getattr(self, "_step_alloc_bytes", 0),
            getattr(self, "_step_reused_bytes", 0),
        )
        return out

    return wrapper


class Optimizer:
    """Base class holding the parameter list and shared plumbing."""

    def __init__(self, params: Iterable[Parameter], weight_decay: float = 0.0) -> None:
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        if weight_decay < 0:
            raise ValueError(f"weight_decay must be >= 0, got {weight_decay}")
        self.weight_decay = weight_decay

    def zero_grad(self) -> None:
        """Clear gradients on all managed parameters."""
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """Resumable state: scalars plus lists of moment arrays.

        Subclasses extend the base dict.  List-of-ndarray values are
        moment buffers aligned with ``self.params``; everything else
        must be JSON-serialisable (checkpointing relies on this split).
        """
        return {
            "type": type(self).__name__,
            "weight_decay": self.weight_decay,
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore state produced by :meth:`state_dict`."""
        if state.get("type") != type(self).__name__:
            raise ValueError(
                f"optimizer state is for {state.get('type')!r}, "
                f"not {type(self).__name__!r}"
            )
        self.weight_decay = float(state["weight_decay"])

    def _load_moments(self, stored: List[np.ndarray], target: List[np.ndarray]) -> None:
        """Copy stored moment buffers into ``target``, validating shapes."""
        if len(stored) != len(target):
            raise ValueError(
                f"optimizer state has {len(stored)} moment buffers, "
                f"expected {len(target)}"
            )
        for i, (src, dst) in enumerate(zip(stored, target)):
            src = np.asarray(src, dtype=dst.dtype)
            if src.shape != dst.shape:
                raise ValueError(
                    f"moment buffer {i} shape mismatch: expected "
                    f"{dst.shape}, got {src.shape}"
                )
            dst[...] = src

    def _grad(self, p: Parameter) -> Grad:
        """Parameter gradient with L2 weight decay folded in.

        Weight decay adds ``2 * wd * p`` to *every* row, so a sparse
        gradient densifies here -- the exact-semantics contract beats
        keeping it sparse.  With ``weight_decay == 0`` (the common case
        for embedding-heavy configs) sparse gradients pass through.
        """
        grad = p.grad
        if grad is None:
            return np.zeros_like(p.data)
        if not self.weight_decay:
            return grad
        if isinstance(grad, SparseRowGrad):
            grad = grad.to_dense()
            grad += 2.0 * self.weight_decay * p.data
            return grad
        return grad + 2.0 * self.weight_decay * p.data


def _active_rows_from_moments(moments: Sequence[np.ndarray]) -> np.ndarray:
    """Boolean mask of rows where any moment buffer is non-zero.

    A row whose moments are all exactly zero is indistinguishable from a
    never-touched row: the dense update there is an exact no-op.  The
    mask is therefore safely rebuildable from the buffers alone (no
    extra state to checkpoint).
    """
    first = moments[0]
    tail_axes = tuple(range(1, first.ndim))
    mask = (first != 0).any(axis=tail_axes)
    for m in moments[1:]:
        mask |= (m != 0).any(axis=tail_axes)
    return mask


def clip_global_norm(params: Sequence[Parameter], max_norm: float) -> float:
    """Scale all gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm (useful for logging training stability).
    Sparse row-gradients contribute only their stored rows (implicit
    zeros add nothing to the norm) and are scaled in place.
    """
    if max_norm <= 0:
        raise ValueError(f"max_norm must be positive, got {max_norm}")
    total = 0.0
    for p in params:
        grad = p.grad
        if grad is None:
            continue
        if isinstance(grad, SparseRowGrad):
            total += grad.sum_of_squares()
        else:
            total += float(np.sum(grad**2))
    norm = float(np.sqrt(total))
    if norm > max_norm:
        scale = max_norm / (norm + 1e-12)
        for p in params:
            grad = p.grad
            if grad is None:
                continue
            if isinstance(grad, SparseRowGrad):
                grad.scale_(scale)
            else:
                grad *= scale
    return norm
