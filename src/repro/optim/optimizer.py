"""Optimizer base class and gradient utilities."""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Sequence

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base class holding the parameter list and shared plumbing."""

    def __init__(self, params: Iterable[Parameter], weight_decay: float = 0.0) -> None:
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        if weight_decay < 0:
            raise ValueError(f"weight_decay must be >= 0, got {weight_decay}")
        self.weight_decay = weight_decay

    def zero_grad(self) -> None:
        """Clear gradients on all managed parameters."""
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """Resumable state: scalars plus lists of moment arrays.

        Subclasses extend the base dict.  List-of-ndarray values are
        moment buffers aligned with ``self.params``; everything else
        must be JSON-serialisable (checkpointing relies on this split).
        """
        return {
            "type": type(self).__name__,
            "weight_decay": self.weight_decay,
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore state produced by :meth:`state_dict`."""
        if state.get("type") != type(self).__name__:
            raise ValueError(
                f"optimizer state is for {state.get('type')!r}, "
                f"not {type(self).__name__!r}"
            )
        self.weight_decay = float(state["weight_decay"])

    def _load_moments(self, stored: List[np.ndarray], target: List[np.ndarray]) -> None:
        """Copy stored moment buffers into ``target``, validating shapes."""
        if len(stored) != len(target):
            raise ValueError(
                f"optimizer state has {len(stored)} moment buffers, "
                f"expected {len(target)}"
            )
        for i, (src, dst) in enumerate(zip(stored, target)):
            src = np.asarray(src, dtype=dst.dtype)
            if src.shape != dst.shape:
                raise ValueError(
                    f"moment buffer {i} shape mismatch: expected "
                    f"{dst.shape}, got {src.shape}"
                )
            dst[...] = src

    def _grad(self, p: Parameter) -> np.ndarray:
        """Parameter gradient with L2 weight decay folded in."""
        grad = p.grad if p.grad is not None else np.zeros_like(p.data)
        if self.weight_decay:
            grad = grad + 2.0 * self.weight_decay * p.data
        return grad


def clip_global_norm(params: Sequence[Parameter], max_norm: float) -> float:
    """Scale all gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm (useful for logging training stability).
    """
    if max_norm <= 0:
        raise ValueError(f"max_norm must be positive, got {max_norm}")
    total = 0.0
    for p in params:
        if p.grad is not None:
            total += float(np.sum(p.grad**2))
    norm = float(np.sqrt(total))
    if norm > max_norm:
        scale = max_norm / (norm + 1e-12)
        for p in params:
            if p.grad is not None:
                p.grad *= scale
    return norm
