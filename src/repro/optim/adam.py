"""Adam optimizer (Kingma & Ba, 2014) -- the paper's training algorithm."""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

import numpy as np

from repro.autograd.sparse import SparseRowGrad
from repro.nn.module import Parameter
from repro.optim.optimizer import (
    Optimizer,
    _active_rows_from_moments,
    _instrument_step,
)


class Adam(Optimizer):
    """Adam with bias correction.

    Defaults match the paper's setting: ``lr=0.001`` (Section IV-A2).
    ``weight_decay`` implements the Eq. (14) L2 regularizer
    (``lambda_2``, paper default 1e-4).

    Sparse row-gradients (from embedding lookups) take a row-sliced
    update path that is **bit-exact** to the dense update: a row whose
    moments are all zero and which receives no gradient is an exact
    no-op under dense Adam (``m_hat = v_hat = 0`` => update ``0.0``), so
    only the *active* rows -- rows ever touched by a gradient -- need
    processing.  The active set is tracked per parameter as a boolean
    mask and rebuilt lazily from the moment buffers after a state
    restore, so the ``state_dict`` format is unchanged.
    """

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 0.001,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, weight_decay)
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.lr = lr
        self.beta1, self.beta2 = beta1, beta2
        self.eps = eps
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        # Lazily-built per-parameter active-row masks (None = rebuild
        # from the moment buffers on next sparse update).
        self._active: List[Optional[np.ndarray]] = [None] * len(self.params)

    def state_dict(self) -> Dict[str, Any]:
        state = super().state_dict()
        state.update(
            lr=self.lr,
            beta1=self.beta1,
            beta2=self.beta2,
            eps=self.eps,
            step_count=self._step_count,
            m=[m.copy() for m in self._m],
            v=[v.copy() for v in self._v],
        )
        return state

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        super().load_state_dict(state)
        self.lr = float(state["lr"])
        self.beta1 = float(state["beta1"])
        self.beta2 = float(state["beta2"])
        self.eps = float(state["eps"])
        self._step_count = int(state["step_count"])
        self._load_moments(state["m"], self._m)
        self._load_moments(state["v"], self._v)
        self._active = [None] * len(self.params)

    @_instrument_step
    def step(self) -> None:
        self._step_count += 1
        t = self._step_count
        bias1 = 1.0 - self.beta1**t
        bias2 = 1.0 - self.beta2**t
        for i, p in enumerate(self.params):
            grad = self._grad(p)
            if isinstance(grad, SparseRowGrad):
                self._sparse_update(i, p, grad, bias1, bias2)
                continue
            m, v = self._m[i], self._v[i]
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def _sparse_update(
        self,
        i: int,
        p: Parameter,
        grad: SparseRowGrad,
        bias1: float,
        bias2: float,
    ) -> None:
        m, v = self._m[i], self._v[i]
        mask = self._active[i]
        if mask is None:
            mask = self._active[i] = _active_rows_from_moments((m, v))
        mask[grad.indices] = True
        rows = np.nonzero(mask)[0]
        if 2 * rows.size > mask.size:
            # Mostly-active table: the gather/scatter of the sliced path
            # costs more than it saves; run the plain vectorised update
            # on a densified gradient (identical arithmetic).
            self._dense_rows_update(p, m, v, grad.to_dense(), bias1, bias2)
            return
        g = np.zeros((rows.size,) + p.data.shape[1:], dtype=p.data.dtype)
        g[np.searchsorted(rows, grad.indices)] = grad.values
        mr, vr = m[rows], v[rows]
        mr *= self.beta1
        mr += (1.0 - self.beta1) * g
        vr *= self.beta2
        vr += (1.0 - self.beta2) * g**2
        m[rows] = mr
        v[rows] = vr
        m_hat = mr / bias1
        v_hat = vr / bias2
        p.data[rows] -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def _dense_rows_update(self, p, m, v, grad, bias1, bias2) -> None:
        m *= self.beta1
        m += (1.0 - self.beta1) * grad
        v *= self.beta2
        v += (1.0 - self.beta2) * grad**2
        m_hat = m / bias1
        v_hat = v / bias2
        p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
