"""Adam optimizer (Kingma & Ba, 2014) -- the paper's training algorithm."""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

import numpy as np

from repro.autograd.sparse import SparseRowGrad
from repro.nn.module import Parameter
from repro.optim.optimizer import (
    Optimizer,
    _active_rows_from_moments,
    _instrument_step,
)


class Adam(Optimizer):
    """Adam with bias correction.

    Defaults match the paper's setting: ``lr=0.001`` (Section IV-A2).
    ``weight_decay`` implements the Eq. (14) L2 regularizer
    (``lambda_2``, paper default 1e-4).

    Sparse row-gradients (from embedding lookups) take a row-sliced
    update path that is **bit-exact** to the dense update: a row whose
    moments are all zero and which receives no gradient is an exact
    no-op under dense Adam (``m_hat = v_hat = 0`` => update ``0.0``), so
    only the *active* rows -- rows ever touched by a gradient -- need
    processing.  The active set is tracked per parameter as a boolean
    mask and rebuilt lazily from the moment buffers after a state
    restore, so the ``state_dict`` format is unchanged.
    """

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 0.001,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, weight_decay)
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.lr = lr
        self.beta1, self.beta2 = beta1, beta2
        self.eps = eps
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        # Lazily-built per-parameter active-row masks (None = rebuild
        # from the moment buffers on next sparse update).
        self._active: List[Optional[np.ndarray]] = [None] * len(self.params)
        # Scratch pool for the out= update kernels: buffers are borrowed
        # per parameter update and returned afterwards, so steady-state
        # steps allocate nothing.  ``_step_alloc_bytes`` /
        # ``_step_reused_bytes`` feed the profiler's ``optimizer.step``
        # memory attribution.
        self._scratch: Dict[tuple, List[np.ndarray]] = {}
        self._borrowed: List[tuple] = []
        self._step_alloc_bytes = 0
        self._step_reused_bytes = 0

    def state_dict(self) -> Dict[str, Any]:
        state = super().state_dict()
        state.update(
            lr=self.lr,
            beta1=self.beta1,
            beta2=self.beta2,
            eps=self.eps,
            step_count=self._step_count,
            m=[m.copy() for m in self._m],
            v=[v.copy() for v in self._v],
        )
        return state

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        super().load_state_dict(state)
        self.lr = float(state["lr"])
        self.beta1 = float(state["beta1"])
        self.beta2 = float(state["beta2"])
        self.eps = float(state["eps"])
        self._step_count = int(state["step_count"])
        self._load_moments(state["m"], self._m)
        self._load_moments(state["v"], self._v)
        self._active = [None] * len(self.params)

    # -- scratch pool --------------------------------------------------
    def _borrow(self, shape, dtype) -> np.ndarray:
        key = (tuple(shape), np.dtype(dtype).str)
        pool = self._scratch.get(key)
        if pool:
            buf = pool.pop()
            self._step_reused_bytes += buf.nbytes
        else:
            buf = np.empty(shape, dtype=dtype)
            self._step_alloc_bytes += buf.nbytes
        self._borrowed.append((key, buf))
        return buf

    def _release(self) -> None:
        for key, buf in self._borrowed:
            self._scratch.setdefault(key, []).append(buf)
        self._borrowed.clear()

    @_instrument_step
    def step(self) -> None:
        self._step_count += 1
        self._step_alloc_bytes = 0
        self._step_reused_bytes = 0
        t = self._step_count
        bias1 = 1.0 - self.beta1**t
        bias2 = 1.0 - self.beta2**t
        for i, p in enumerate(self.params):
            grad = self._grad(p)
            if isinstance(grad, SparseRowGrad):
                self._sparse_update(i, p, grad, bias1, bias2)
                continue
            self._dense_update(p.data, self._m[i], self._v[i], grad, bias1, bias2)

    def _dense_update(self, target, m, v, grad, bias1, bias2) -> None:
        """Adam update on ``target`` via pooled out= kernels.

        Ufunc-for-ufunc identical to the textbook expression form
        (``m_hat = m / bias1`` etc.): every line below maps to exactly
        one of the ufunc calls the expressions would issue, just with
        the output landing in a reused scratch buffer, so the result is
        bit-exact while steady-state steps allocate nothing.
        """
        s1 = self._borrow(target.shape, target.dtype)
        s2 = self._borrow(target.shape, target.dtype)
        m *= self.beta1
        np.multiply(grad, 1.0 - self.beta1, out=s1)
        m += s1
        v *= self.beta2
        np.multiply(grad, grad, out=s1)  # grad**2 (numpy's own lowering)
        s1 *= 1.0 - self.beta2
        v += s1
        np.divide(m, bias1, out=s1)  # m_hat
        np.divide(v, bias2, out=s2)  # v_hat
        np.sqrt(s2, out=s2)
        s2 += self.eps
        s1 *= self.lr
        s1 /= s2
        target -= s1
        self._release()

    def _sparse_update(
        self,
        i: int,
        p: Parameter,
        grad: SparseRowGrad,
        bias1: float,
        bias2: float,
    ) -> None:
        m, v = self._m[i], self._v[i]
        mask = self._active[i]
        if mask is None:
            mask = self._active[i] = _active_rows_from_moments((m, v))
        mask[grad.indices] = True
        rows = np.nonzero(mask)[0]
        if 2 * rows.size > mask.size:
            # Mostly-active table: the gather/scatter of the sliced path
            # costs more than it saves; run the plain vectorised update
            # on a densified gradient (identical arithmetic).
            self._dense_rows_update(p, m, v, grad.to_dense(), bias1, bias2)
            return
        shape = (rows.size,) + p.data.shape[1:]
        g = self._borrow(shape, p.data.dtype)
        g[...] = 0
        g[np.searchsorted(rows, grad.indices)] = grad.values
        mr = self._borrow(shape, p.data.dtype)
        vr = self._borrow(shape, p.data.dtype)
        np.take(m, rows, axis=0, out=mr)
        np.take(v, rows, axis=0, out=vr)
        s1 = self._borrow(shape, p.data.dtype)
        s2 = self._borrow(shape, p.data.dtype)
        mr *= self.beta1
        np.multiply(g, 1.0 - self.beta1, out=s1)
        mr += s1
        vr *= self.beta2
        np.multiply(g, g, out=s1)
        s1 *= 1.0 - self.beta2
        vr += s1
        m[rows] = mr
        v[rows] = vr
        np.divide(mr, bias1, out=s1)
        np.divide(vr, bias2, out=s2)
        np.sqrt(s2, out=s2)
        s2 += self.eps
        s1 *= self.lr
        s1 /= s2
        p.data[rows] -= s1
        self._release()

    def _dense_rows_update(self, p, m, v, grad, bias1, bias2) -> None:
        self._dense_update(p.data, m, v, grad, bias1, bias2)
