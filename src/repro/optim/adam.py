"""Adam optimizer (Kingma & Ba, 2014) -- the paper's training algorithm."""

from __future__ import annotations

from typing import Any, Dict, Iterable

import numpy as np

from repro.nn.module import Parameter
from repro.optim.optimizer import Optimizer


class Adam(Optimizer):
    """Adam with bias correction.

    Defaults match the paper's setting: ``lr=0.001`` (Section IV-A2).
    ``weight_decay`` implements the Eq. (14) L2 regularizer
    (``lambda_2``, paper default 1e-4).
    """

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 0.001,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, weight_decay)
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.lr = lr
        self.beta1, self.beta2 = beta1, beta2
        self.eps = eps
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def state_dict(self) -> Dict[str, Any]:
        state = super().state_dict()
        state.update(
            lr=self.lr,
            beta1=self.beta1,
            beta2=self.beta2,
            eps=self.eps,
            step_count=self._step_count,
            m=[m.copy() for m in self._m],
            v=[v.copy() for v in self._v],
        )
        return state

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        super().load_state_dict(state)
        self.lr = float(state["lr"])
        self.beta1 = float(state["beta1"])
        self.beta2 = float(state["beta2"])
        self.eps = float(state["eps"])
        self._step_count = int(state["step_count"])
        self._load_moments(state["m"], self._m)
        self._load_moments(state["v"], self._v)

    def step(self) -> None:
        self._step_count += 1
        t = self._step_count
        bias1 = 1.0 - self.beta1**t
        bias2 = 1.0 - self.beta2**t
        for p, m, v in zip(self.params, self._m, self._v):
            grad = self._grad(p)
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
