"""Learning-rate schedulers.

The paper trains with a constant learning rate (0.001); schedulers are
provided for the extension experiments and for downstream users.  A
scheduler wraps an optimizer and mutates its ``lr`` on ``step()``
(called once per epoch or per batch, caller's choice).
"""

from __future__ import annotations

from repro.optim.optimizer import Optimizer


class Scheduler:
    """Base class: tracks step count, delegates the schedule shape."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.step_count = 0

    def step(self) -> float:
        """Advance the schedule; returns the new learning rate."""
        self.step_count += 1
        lr = self._lr_at(self.step_count)
        self.optimizer.lr = lr
        return lr

    def _lr_at(self, step: int) -> float:
        raise NotImplementedError


class StepDecay(Scheduler):
    """Multiply the learning rate by ``gamma`` every ``period`` steps."""

    def __init__(self, optimizer: Optimizer, period: int, gamma: float = 0.5) -> None:
        super().__init__(optimizer)
        if period < 1:
            raise ValueError(f"period must be >= 1, got {period}")
        if not 0.0 < gamma <= 1.0:
            raise ValueError(f"gamma must be in (0, 1], got {gamma}")
        self.period = period
        self.gamma = gamma

    def _lr_at(self, step: int) -> float:
        return self.base_lr * self.gamma ** (step // self.period)


class ExponentialDecay(Scheduler):
    """``lr = base * gamma^step``."""

    def __init__(self, optimizer: Optimizer, gamma: float = 0.95) -> None:
        super().__init__(optimizer)
        if not 0.0 < gamma <= 1.0:
            raise ValueError(f"gamma must be in (0, 1], got {gamma}")
        self.gamma = gamma

    def _lr_at(self, step: int) -> float:
        return self.base_lr * self.gamma**step


class LinearWarmup(Scheduler):
    """Linear ramp from ~0 to the base rate over ``warmup_steps``.

    Useful with the IPW losses, whose early gradients are noisy until
    the propensity tower stabilises.
    """

    def __init__(self, optimizer: Optimizer, warmup_steps: int) -> None:
        super().__init__(optimizer)
        if warmup_steps < 1:
            raise ValueError(f"warmup_steps must be >= 1, got {warmup_steps}")
        self.warmup_steps = warmup_steps

    def _lr_at(self, step: int) -> float:
        if step >= self.warmup_steps:
            return self.base_lr
        return self.base_lr * step / self.warmup_steps
