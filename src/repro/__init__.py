"""Reproduction of DCMT (ICDE 2023).

DCMT is a Direct entire-space Causal Multi-Task framework for post-click
conversion rate (CVR) estimation.  This package re-implements the full
system described in the paper, plus every substrate it depends on:

* :mod:`repro.autograd` -- a numpy reverse-mode automatic differentiation
  engine (the paper used TensorFlow; see ``DESIGN.md`` for the
  substitution rationale).
* :mod:`repro.nn` / :mod:`repro.optim` -- neural-network layers and
  optimizers built on the autograd engine.
* :mod:`repro.data` -- synthetic exposure/click/conversion datasets with
  the same causal structure (MNAR selection bias, extreme sparsity) as
  the Ali-CCP and AliExpress benchmarks used in the paper.
* :mod:`repro.metrics` -- AUC, log-loss, calibration and A/B statistics.
* :mod:`repro.models` -- the seven baselines of Table III.
* :mod:`repro.core` -- the DCMT model itself (twin tower, counterfactual
  mechanism, self-normalised inverse propensity weighting).
* :mod:`repro.training` -- training and evaluation harness.
* :mod:`repro.simulation` -- an online A/B test simulator (Table V,
  Fig. 7).
* :mod:`repro.experiments` -- one module per paper table/figure.
"""

from repro.version import __version__

__all__ = ["__version__"]
