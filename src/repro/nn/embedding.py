"""Sparse-id embedding table.

The shared Embedding Layer of Fig. 3 maps every sparse feature id to a
dense vector; per-feature tables are concatenated downstream (see
:class:`repro.models.components.FeatureEmbedding`).
"""

from __future__ import annotations

import contextlib
from typing import Iterator

import numpy as np

from repro.autograd import ops
from repro.autograd.tensor import Tensor
from repro.nn import init
from repro.nn.module import Module, Parameter

_TRUSTED_INDICES = False


@contextlib.contextmanager
def trusted_indices() -> Iterator[None]:
    """Skip embedding bounds checks for pre-validated index arrays.

    The trainer wraps its inner loop in this context after the dataset's
    schema validation has already proven every sparse id in range
    (``schema.validate_batch_arrays``); re-checking per lookup per batch
    is pure overhead.  Note numpy's fancy indexing still raises on
    positive out-of-range ids -- what this skips is the defensive
    pre-scan (and with it, rejection of negative ids, which numpy would
    silently wrap).
    """
    global _TRUSTED_INDICES
    previous = _TRUSTED_INDICES
    _TRUSTED_INDICES = True
    try:
        yield
    finally:
        _TRUSTED_INDICES = previous


class Embedding(Module):
    """A ``(num_embeddings, dim)`` lookup table.

    Parameters
    ----------
    num_embeddings:
        Vocabulary size.
    dim:
        Embedding dimension (the paper sweeps {4,...,128}; defaults are
        set by the experiment configs, not here).
    rng:
        Generator for the Gaussian initialization.
    std:
        Initialization standard deviation.
    """

    def __init__(
        self,
        num_embeddings: int,
        dim: int,
        rng: np.random.Generator,
        std: float = 0.01,
    ) -> None:
        super().__init__()
        if num_embeddings < 1 or dim < 1:
            raise ValueError(
                f"embedding shape must be positive, got ({num_embeddings}, {dim})"
            )
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.weight = Parameter(
            init.normal((num_embeddings, dim), rng, std=std), name="embedding"
        )

    def grow(self, extra_rows: int) -> None:
        """Extend the vocabulary by ``extra_rows`` zero-initialised rows.

        This is the catalog-churn path: newly quarantined OOV ids are
        admitted by appending rows, never by touching existing ones, so
        every old id keeps its exact learned vector.  The append rebinds
        ``weight.data``, which a compiled execution plan detects as a
        parameter rebind and answers with invalidate + re-trace (see
        ``repro.autograd.plan``); zero init means a grown model scores
        unseen items from the shared towers alone until a retrain fills
        the rows in.
        """
        if extra_rows < 1:
            raise ValueError(f"extra_rows must be >= 1, got {extra_rows}")
        extra = np.zeros(
            (extra_rows,) + self.weight.data.shape[1:],
            dtype=self.weight.data.dtype,
        )
        self.weight.data = np.concatenate([self.weight.data, extra])
        self.num_embeddings += extra_rows

    def forward(self, indices: np.ndarray) -> Tensor:
        """Gather embedding rows for integer ``indices`` of any shape."""
        idx = np.asarray(indices)
        if not _TRUSTED_INDICES and idx.size and self._out_of_range(idx):
            raise IndexError(
                f"index out of range for vocabulary of size {self.num_embeddings}"
            )
        return ops.take_rows(self.weight, idx)

    def _out_of_range(self, idx: np.ndarray) -> bool:
        if idx.dtype == np.int64 and idx.flags.c_contiguous:
            # Single pass: reinterpreting as uint64 maps negatives to
            # huge values, so one comparison catches both bounds.
            return bool((idx.view(np.uint64) >= self.num_embeddings).any())
        return bool(idx.min() < 0 or idx.max() >= self.num_embeddings)
