"""Sparse-id embedding table.

The shared Embedding Layer of Fig. 3 maps every sparse feature id to a
dense vector; per-feature tables are concatenated downstream (see
:class:`repro.models.components.FeatureEmbedding`).
"""

from __future__ import annotations

import numpy as np

from repro.autograd import ops
from repro.autograd.tensor import Tensor
from repro.nn import init
from repro.nn.module import Module, Parameter


class Embedding(Module):
    """A ``(num_embeddings, dim)`` lookup table.

    Parameters
    ----------
    num_embeddings:
        Vocabulary size.
    dim:
        Embedding dimension (the paper sweeps {4,...,128}; defaults are
        set by the experiment configs, not here).
    rng:
        Generator for the Gaussian initialization.
    std:
        Initialization standard deviation.
    """

    def __init__(
        self,
        num_embeddings: int,
        dim: int,
        rng: np.random.Generator,
        std: float = 0.01,
    ) -> None:
        super().__init__()
        if num_embeddings < 1 or dim < 1:
            raise ValueError(
                f"embedding shape must be positive, got ({num_embeddings}, {dim})"
            )
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.weight = Parameter(
            init.normal((num_embeddings, dim), rng, std=std), name="embedding"
        )

    def forward(self, indices: np.ndarray) -> Tensor:
        """Gather embedding rows for integer ``indices`` of any shape."""
        idx = np.asarray(indices)
        if idx.min(initial=0) < 0 or (idx.size and idx.max() >= self.num_embeddings):
            raise IndexError(
                f"index out of range for vocabulary of size {self.num_embeddings}"
            )
        return ops.take_rows(self.weight, idx)
