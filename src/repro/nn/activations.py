"""Activation functions as modules and by-name lookup."""

from __future__ import annotations

from typing import Callable

from repro.autograd import ops
from repro.autograd.tensor import Tensor
from repro.nn.module import Module

_ACTIVATIONS = {
    "relu": ops.relu,
    "tanh": ops.tanh,
    "sigmoid": ops.sigmoid,
    "leaky_relu": ops.leaky_relu,
    "identity": lambda x: x,
}


def get_activation(name: str) -> Callable[[Tensor], Tensor]:
    """Look an activation function up by name.

    Raises ``KeyError`` listing the valid names on a typo, which is the
    most common configuration mistake.
    """
    try:
        return _ACTIVATIONS[name]
    except KeyError:
        raise KeyError(
            f"unknown activation {name!r}; choose from {sorted(_ACTIVATIONS)}"
        ) from None


class Activation(Module):
    """An activation as a module (usable inside :class:`Sequential`)."""

    def __init__(self, name: str) -> None:
        super().__init__()
        self.name = name
        self._fn = get_activation(name)

    def forward(self, x: Tensor) -> Tensor:
        return self._fn(x)
