"""Neural-network building blocks on top of :mod:`repro.autograd`.

The layer zoo covers exactly what the paper's architectures need:

* :class:`~repro.nn.module.Module` / :class:`~repro.nn.module.Parameter`
  -- the composition substrate.
* :class:`~repro.nn.linear.Linear` -- dense layer (also the "wide part"
  generalized linear model of the wide&deep towers).
* :class:`~repro.nn.mlp.MLP` -- the "deep part" multi-layer perceptron,
  e.g. the paper's [320-200-80] / [64-64-32] towers.
* :class:`~repro.nn.embedding.Embedding` -- sparse-id embedding tables.
* :class:`~repro.nn.dropout.Dropout` -- inverted dropout.
* :mod:`~repro.nn.gates` -- multi-gate MTL machinery: mixture-of-experts
  gates (MMOE), cross-stitch units, PLE extraction layers and the AITM
  attention transfer unit.
* :mod:`~repro.nn.init` -- weight initializers.
"""

from repro.nn.module import Module, Parameter, Sequential
from repro.nn.linear import Linear
from repro.nn.mlp import MLP
from repro.nn.embedding import Embedding
from repro.nn.dropout import Dropout
from repro.nn.activations import Activation, get_activation
from repro.nn.gates import AITMTransfer, CrossStitchUnit, ExpertGroup, MMoEGate, PLELayer
from repro.nn.serialization import load_checkpoint, peek_metadata, save_checkpoint
from repro.nn import init

__all__ = [
    "Module",
    "Parameter",
    "Sequential",
    "Linear",
    "MLP",
    "Embedding",
    "Dropout",
    "Activation",
    "get_activation",
    "ExpertGroup",
    "MMoEGate",
    "CrossStitchUnit",
    "PLELayer",
    "AITMTransfer",
    "save_checkpoint",
    "load_checkpoint",
    "peek_metadata",
    "init",
]
