"""``Module`` and ``Parameter``: the composition substrate for models.

``Module`` discovers child modules and parameters by inspecting instance
attributes (including inside lists/tuples/dicts), mirroring the familiar
PyTorch convention without any metaclass magic.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.autograd.tensor import Tensor


class Parameter(Tensor):
    """A tensor that is always trainable (``requires_grad=True``)."""

    def __init__(self, data, name: Optional[str] = None) -> None:
        super().__init__(np.asarray(data, dtype=np.float64), requires_grad=True, name=name)


class Module:
    """Base class for layers and models.

    Subclasses implement :meth:`forward`; parameters and sub-modules
    assigned as attributes (or stored in list/tuple/dict attributes) are
    discovered automatically by :meth:`parameters`.
    """

    def __init__(self) -> None:
        self.training: bool = True

    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs, depth-first."""
        for name, value in sorted(vars(self).items()):
            if name == "training":
                continue
            yield from _walk(value, f"{prefix}{name}")

    def parameters(self) -> List[Parameter]:
        """All trainable parameters, depth-first, deduplicated."""
        seen = set()
        result = []
        for _, param in self.named_parameters():
            if id(param) not in seen:
                seen.add(id(param))
                result.append(param)
        return result

    def modules(self) -> Iterator["Module"]:
        """Yield this module and every descendant module."""
        yield self
        for value in vars(self).values():
            yield from _walk_modules(value)

    def num_parameters(self) -> int:
        """Total number of scalar trainable weights."""
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    def train(self) -> "Module":
        """Switch this module and all descendants to training mode."""
        for module in self.modules():
            module.training = True
        return self

    def eval(self) -> "Module":
        """Switch this module and all descendants to evaluation mode."""
        for module in self.modules():
            module.training = False
        return self

    def zero_grad(self) -> None:
        """Clear gradients on every parameter."""
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copy of all parameter arrays keyed by dotted name."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameter arrays produced by :meth:`state_dict`."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)} "
                f"unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            value = np.asarray(state[name], dtype=param.data.dtype)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: expected {param.data.shape}, "
                    f"got {value.shape}"
                )
            param.data[...] = value


class Sequential(Module):
    """Apply a list of modules in order."""

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        self.layers = list(layers)

    def forward(self, x):
        for layer in self.layers:
            x = layer(x)
        return x

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]


def _walk(value, name: str) -> Iterator[Tuple[str, Parameter]]:
    if isinstance(value, Parameter):
        yield name, value
    elif isinstance(value, Module):
        yield from value.named_parameters(prefix=f"{name}.")
    elif isinstance(value, (list, tuple)):
        for i, item in enumerate(value):
            yield from _walk(item, f"{name}.{i}")
    elif isinstance(value, dict):
        for key in sorted(value):
            yield from _walk(value[key], f"{name}.{key}")


def _walk_modules(value) -> Iterator[Module]:
    if isinstance(value, Module):
        yield from value.modules()
    elif isinstance(value, (list, tuple)):
        for item in value:
            yield from _walk_modules(item)
    elif isinstance(value, dict):
        for item in value.values():
            yield from _walk_modules(item)
