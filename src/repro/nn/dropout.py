"""Inverted dropout (identity in evaluation mode)."""

from __future__ import annotations

import numpy as np

from repro.autograd import ops
from repro.autograd.tensor import Tensor
from repro.nn.module import Module


class Dropout(Module):
    """Randomly zero activations during training, scaling survivors.

    Uses the "inverted" convention so evaluation mode is an identity.
    """

    def __init__(self, rate: float, rng: np.random.Generator) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = rng

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.rate == 0.0:
            return x
        mask = ops.dropout_mask(x.shape, self.rate, self._rng)
        return x * Tensor(mask)
