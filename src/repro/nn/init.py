"""Weight initializers.

All initializers take an explicit ``numpy.random.Generator`` so that
model construction is fully reproducible from a single seed.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np


def zeros(shape: Sequence[int]) -> np.ndarray:
    """All-zero initialization (biases)."""
    return np.zeros(tuple(shape))


def normal(
    shape: Sequence[int], rng: np.random.Generator, std: float = 0.01
) -> np.ndarray:
    """Gaussian initialization with small standard deviation (embeddings)."""
    return rng.normal(0.0, std, size=tuple(shape))


def xavier_uniform(shape: Tuple[int, int], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform, suited to sigmoid/tanh outputs."""
    fan_in, fan_out = _fans(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=tuple(shape))


def xavier_normal(shape: Tuple[int, int], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier normal."""
    fan_in, fan_out = _fans(shape)
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=tuple(shape))


def he_uniform(shape: Tuple[int, int], rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming uniform, suited to ReLU hidden layers."""
    fan_in, _ = _fans(shape)
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=tuple(shape))


def he_normal(shape: Tuple[int, int], rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming normal."""
    fan_in, _ = _fans(shape)
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=tuple(shape))


def _fans(shape: Sequence[int]) -> Tuple[int, int]:
    if len(shape) < 2:
        raise ValueError(f"fan-based init needs a >=2-D shape, got {tuple(shape)}")
    return int(shape[0]), int(shape[1])
