"""Multi-layer perceptron: the "deep part" of every tower.

The paper's deep towers are plain MLPs, e.g. [64-64-32] on the
AliExpress datasets and [320-200-80] on Ali-CCP (Section IV-A2).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.autograd.tensor import Tensor
from repro.nn.activations import get_activation
from repro.nn.dropout import Dropout
from repro.nn.linear import Linear
from repro.nn.module import Module


class MLP(Module):
    """A stack of ``Linear -> activation [-> dropout]`` blocks.

    Parameters
    ----------
    in_features:
        Input width.
    hidden_sizes:
        Widths of the hidden layers, e.g. ``[64, 64, 32]``.
    rng:
        Generator for weight initialization (and dropout masks).
    activation:
        Activation applied after every hidden layer.
    out_features:
        Optional extra output layer (no activation); when ``None`` the
        output is the last hidden representation.
    dropout:
        Dropout rate applied after each hidden activation (0 disables).
    """

    def __init__(
        self,
        in_features: int,
        hidden_sizes: Sequence[int],
        rng: np.random.Generator,
        activation: str = "relu",
        out_features: Optional[int] = None,
        dropout: float = 0.0,
    ) -> None:
        super().__init__()
        if not hidden_sizes and out_features is None:
            raise ValueError("MLP needs at least one hidden layer or out_features")
        self.activation_name = activation
        self._activation = get_activation(activation)
        self.hidden_layers = []
        width = in_features
        for size in hidden_sizes:
            self.hidden_layers.append(Linear(width, size, rng))
            width = size
        self.dropouts = [
            Dropout(dropout, rng) if dropout > 0 else None for _ in hidden_sizes
        ]
        self.output_layer: Optional[Linear] = (
            Linear(width, out_features, rng, weight_init="xavier_uniform")
            if out_features is not None
            else None
        )
        self.out_width = out_features if out_features is not None else width

    def forward(self, x: Tensor) -> Tensor:
        for layer, drop in zip(self.hidden_layers, self.dropouts):
            x = self._activation(layer(x))
            if drop is not None:
                x = drop(x)
        if self.output_layer is not None:
            x = self.output_layer(x)
        return x
