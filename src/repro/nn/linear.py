"""Dense (fully connected) layer.

Also serves as the "wide part" generalized linear model of the paper's
wide&deep towers (a ``Linear`` with output dimension 1 applied to the
wide feature embedding, Eq. (12)).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd import ops
from repro.autograd.tensor import Tensor
from repro.nn import init
from repro.nn.module import Module, Parameter


class Linear(Module):
    """``y = x @ W + b``.

    Parameters
    ----------
    in_features, out_features:
        Input/output widths.
    rng:
        Generator used for weight initialization.
    bias:
        Whether to add a bias term.
    weight_init:
        One of ``"xavier_uniform"``, ``"xavier_normal"``, ``"he_uniform"``,
        ``"he_normal"``.  Defaults to He uniform (the towers use ReLU).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        bias: bool = True,
        weight_init: str = "he_uniform",
    ) -> None:
        super().__init__()
        if in_features < 1 or out_features < 1:
            raise ValueError(
                f"features must be positive, got ({in_features}, {out_features})"
            )
        initializer = getattr(init, weight_init, None)
        if initializer is None:
            raise ValueError(f"unknown weight_init {weight_init!r}")
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            initializer((in_features, out_features), rng), name="weight"
        )
        self.bias: Optional[Parameter] = (
            Parameter(init.zeros((out_features,)), name="bias") if bias else None
        )

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim == 2:
            return ops.affine(x, self.weight, self.bias)
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out
