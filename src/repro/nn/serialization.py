"""Model checkpointing: parameters to ``.npz``, metadata to JSON.

``save_checkpoint`` writes a single ``.npz`` with every parameter array
(keyed by dotted name) plus a JSON-encoded metadata blob.  Loading
restores the arrays into an *already constructed* module -- model
construction stays in user code, which keeps the format trivial and
future-proof (no pickled classes).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional

import numpy as np

from repro.nn.module import Module

_META_KEY = "__metadata__"
FORMAT_VERSION = 1


def save_checkpoint(
    module: Module,
    path: "Path | str",
    metadata: Optional[Dict[str, Any]] = None,
) -> None:
    """Write ``module``'s parameters (and optional JSON metadata).

    ``metadata`` must be JSON-serialisable; the model name, format
    version and parameter count are recorded automatically.
    """
    path = Path(path)
    state = module.state_dict()
    meta = dict(metadata or {})
    meta.setdefault("model_name", getattr(module, "model_name", type(module).__name__))
    meta["format_version"] = FORMAT_VERSION
    meta["num_parameters"] = module.num_parameters()
    blob = np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8)
    if _META_KEY in state:
        raise ValueError(f"parameter name {_META_KEY!r} is reserved")
    np.savez(path, **state, **{_META_KEY: blob})


def load_checkpoint(module: Module, path: "Path | str") -> Dict[str, Any]:
    """Restore parameters into ``module``; returns the stored metadata.

    Raises ``KeyError``/``ValueError`` when the checkpoint's parameter
    names or shapes do not match the module (same semantics as
    :meth:`Module.load_state_dict`).
    """
    path = Path(path)
    with np.load(path) as archive:
        metadata = _decode_metadata(archive)
        state = {
            key: archive[key] for key in archive.files if key != _META_KEY
        }
    if metadata.get("format_version", 0) > FORMAT_VERSION:
        raise ValueError(
            f"checkpoint format {metadata['format_version']} is newer than "
            f"this library supports ({FORMAT_VERSION})"
        )
    module.load_state_dict(state)
    return metadata


def peek_metadata(path: "Path | str") -> Dict[str, Any]:
    """Read only the metadata blob (cheap; no parameter loading)."""
    with np.load(Path(path)) as archive:
        return _decode_metadata(archive)


def _decode_metadata(archive) -> Dict[str, Any]:
    if _META_KEY not in archive.files:
        return {}
    return json.loads(bytes(archive[_META_KEY]).decode("utf-8"))
