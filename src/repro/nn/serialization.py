"""Model checkpointing: parameters to ``.npz``, metadata to JSON.

``save_checkpoint`` writes a single ``.npz`` with every parameter array
(keyed by dotted name) plus a JSON-encoded metadata blob.  Loading
restores the arrays into an *already constructed* module -- model
construction stays in user code, which keeps the format trivial and
future-proof (no pickled classes).

All writes are atomic (temp file + ``os.replace``), so a crash during
a save never leaves a truncated archive under the final name.
``save_optimizer_state`` / ``load_optimizer_state`` round-trip the
optimizer's moment buffers and step counter through the same format,
which is what makes resumed training bit-exact (Adam's bias correction
depends on the step count; its update direction on the moments).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, Optional

import numpy as np

from repro.nn.module import Module

if TYPE_CHECKING:  # avoid the repro.optim <-> repro.nn import cycle
    from repro.optim.optimizer import Optimizer

_META_KEY = "__metadata__"
FORMAT_VERSION = 1


def _atomic_savez(path: Path, arrays: Dict[str, np.ndarray]) -> None:
    """Write an ``.npz`` atomically (np.savez on a handle, then rename)."""
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        np.savez(handle, **arrays)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def save_checkpoint(
    module: Module,
    path: "Path | str",
    metadata: Optional[Dict[str, Any]] = None,
) -> None:
    """Write ``module``'s parameters (and optional JSON metadata).

    ``metadata`` must be JSON-serialisable; the model name, format
    version and parameter count are recorded automatically.
    """
    path = Path(path)
    state = module.state_dict()
    meta = dict(metadata or {})
    meta.setdefault("model_name", getattr(module, "model_name", type(module).__name__))
    meta["format_version"] = FORMAT_VERSION
    meta["num_parameters"] = module.num_parameters()
    blob = np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8)
    if _META_KEY in state:
        raise ValueError(f"parameter name {_META_KEY!r} is reserved")
    if not path.name.endswith(".npz"):  # match np.savez's suffix behaviour
        path = path.with_name(path.name + ".npz")
    _atomic_savez(path, {**state, _META_KEY: blob})


def load_checkpoint(module: Module, path: "Path | str") -> Dict[str, Any]:
    """Restore parameters into ``module``; returns the stored metadata.

    Raises ``KeyError``/``ValueError`` when the checkpoint's parameter
    names or shapes do not match the module (same semantics as
    :meth:`Module.load_state_dict`).
    """
    path = Path(path)
    with np.load(path) as archive:
        metadata = _decode_metadata(archive)
        state = {
            key: archive[key] for key in archive.files if key != _META_KEY
        }
    if metadata.get("format_version", 0) > FORMAT_VERSION:
        raise ValueError(
            f"checkpoint format {metadata['format_version']} is newer than "
            f"this library supports ({FORMAT_VERSION})"
        )
    module.load_state_dict(state)
    return metadata


def save_optimizer_state(
    optimizer: Optimizer,
    path: "Path | str",
    metadata: Optional[Dict[str, Any]] = None,
) -> None:
    """Write the optimizer's resumable state (moments, step count).

    The layout mirrors :func:`save_checkpoint`: moment buffers become
    arrays keyed ``<buffer>.<index>``; every scalar entry of
    ``optimizer.state_dict()`` lands in the JSON metadata blob.
    """
    path = Path(path)
    state = optimizer.state_dict()
    arrays: Dict[str, np.ndarray] = {}
    scalars: Dict[str, Any] = {}
    array_lens: Dict[str, int] = {}
    for key, value in state.items():
        if isinstance(value, (list, tuple)) and all(
            isinstance(item, np.ndarray) for item in value
        ):
            array_lens[key] = len(value)
            for i, item in enumerate(value):
                arrays[f"{key}.{i}"] = item
        else:
            scalars[key] = value
    meta = dict(metadata or {})
    meta["format_version"] = FORMAT_VERSION
    meta["optimizer_scalars"] = scalars
    meta["optimizer_array_lens"] = array_lens
    blob = np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8)
    if not path.name.endswith(".npz"):
        path = path.with_name(path.name + ".npz")
    _atomic_savez(path, {**arrays, _META_KEY: blob})


def load_optimizer_state(optimizer: Optimizer, path: "Path | str") -> Dict[str, Any]:
    """Restore state written by :func:`save_optimizer_state`.

    Returns the user metadata.  Raises ``ValueError`` when the stored
    state belongs to a different optimizer class or the moment shapes
    do not match the optimizer's parameters.
    """
    with np.load(Path(path)) as archive:
        meta = _decode_metadata(archive)
        arrays = {key: archive[key] for key in archive.files if key != _META_KEY}
    state: Dict[str, Any] = dict(meta.pop("optimizer_scalars"))
    for key, length in meta.pop("optimizer_array_lens").items():
        state[key] = [arrays[f"{key}.{i}"] for i in range(length)]
    optimizer.load_state_dict(state)
    meta.pop("format_version", None)
    return meta


def peek_metadata(path: "Path | str") -> Dict[str, Any]:
    """Read only the metadata blob (cheap; no parameter loading)."""
    with np.load(Path(path)) as archive:
        return _decode_metadata(archive)


def _decode_metadata(archive) -> Dict[str, Any]:
    if _META_KEY not in archive.files:
        return {}
    return json.loads(bytes(archive[_META_KEY]).decode("utf-8"))
