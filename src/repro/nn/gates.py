"""Multi-gate multi-task building blocks.

These implement the sharing mechanisms of the paper's "multi-gate MTL"
baselines (Fig. 2(b), Table III):

* :class:`ExpertGroup` + :class:`MMoEGate` -- the gated
  mixture-of-experts of MMOE (Ma et al., KDD 2018).
* :class:`CrossStitchUnit` -- the learnable activation combination of
  Cross-Stitch networks (Misra et al., CVPR 2016).
* :class:`PLELayer` -- one customized-gate-control extraction layer of
  Progressive Layered Extraction (Tang et al., RecSys 2020).
* :class:`AITMTransfer` -- the adaptive information transfer module of
  AITM (Xi et al., KDD 2021).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.autograd import ops
from repro.autograd.tensor import Tensor
from repro.nn.linear import Linear
from repro.nn.mlp import MLP
from repro.nn.module import Module, Parameter


class ExpertGroup(Module):
    """``num_experts`` identically shaped MLP experts over a shared input.

    ``forward`` returns a tensor of shape ``(batch, num_experts, width)``.
    """

    def __init__(
        self,
        in_features: int,
        hidden_sizes: Sequence[int],
        num_experts: int,
        rng: np.random.Generator,
        activation: str = "relu",
    ) -> None:
        super().__init__()
        if num_experts < 1:
            raise ValueError(f"need at least one expert, got {num_experts}")
        self.experts = [
            MLP(in_features, hidden_sizes, rng, activation=activation)
            for _ in range(num_experts)
        ]
        self.out_width = self.experts[0].out_width

    def forward(self, x: Tensor) -> Tensor:
        return ops.stack([expert(x) for expert in self.experts], axis=1)


class MMoEGate(Module):
    """A softmax gate mixing expert outputs for one task.

    Given expert outputs ``(batch, num_experts, width)`` and the shared
    input ``x``, produces ``sum_k g_k(x) * expert_k`` of shape
    ``(batch, width)``.
    """

    def __init__(
        self, in_features: int, num_experts: int, rng: np.random.Generator
    ) -> None:
        super().__init__()
        self.gate = Linear(in_features, num_experts, rng, weight_init="xavier_uniform")

    def forward(self, x: Tensor, expert_outputs: Tensor) -> Tensor:
        weights = ops.softmax(self.gate(x), axis=-1)  # (batch, num_experts)
        batch, num_experts = weights.shape
        expanded = weights.reshape(batch, num_experts, 1)
        return (expert_outputs * expanded).sum(axis=1)


class CrossStitchUnit(Module):
    """Learnable linear recombination of two tasks' activations.

    ``a1' = s11*a1 + s12*a2`` and ``a2' = s21*a1 + s22*a2`` with the
    2x2 stitch matrix initialized near identity (0.9/0.1), the standard
    choice so tasks start mostly independent.
    """

    def __init__(self, self_weight: float = 0.9) -> None:
        super().__init__()
        cross = 1.0 - self_weight
        self.stitch = Parameter(
            np.array([[self_weight, cross], [cross, self_weight]]), name="stitch"
        )

    def forward(self, a1: Tensor, a2: Tensor):
        s = self.stitch
        out1 = a1 * s[0, 0] + a2 * s[0, 1]
        out2 = a1 * s[1, 0] + a2 * s[1, 1]
        return out1, out2


class PLELayer(Module):
    """One CGC (customized gate control) extraction layer of PLE.

    Each task owns ``task_experts`` private experts; ``shared_experts``
    are visible to every task.  A per-task gate mixes
    ``private + shared`` experts; an optional shared gate (used between
    stacked layers) mixes all experts.
    """

    def __init__(
        self,
        in_features: int,
        hidden_sizes: Sequence[int],
        num_tasks: int,
        rng: np.random.Generator,
        task_experts: int = 1,
        shared_experts: int = 1,
        with_shared_gate: bool = False,
    ) -> None:
        super().__init__()
        if num_tasks < 2:
            raise ValueError(f"PLE needs >=2 tasks, got {num_tasks}")
        self.num_tasks = num_tasks
        self.task_expert_groups = [
            ExpertGroup(in_features, hidden_sizes, task_experts, rng)
            for _ in range(num_tasks)
        ]
        self.shared_expert_group = ExpertGroup(
            in_features, hidden_sizes, shared_experts, rng
        )
        mix_count = task_experts + shared_experts
        self.task_gates = [
            Linear(in_features, mix_count, rng, weight_init="xavier_uniform")
            for _ in range(num_tasks)
        ]
        self.shared_gate: Optional[Linear] = None
        if with_shared_gate:
            all_experts = num_tasks * task_experts + shared_experts
            self.shared_gate = Linear(
                in_features, all_experts, rng, weight_init="xavier_uniform"
            )
        self.out_width = self.shared_expert_group.out_width

    def forward(self, task_inputs: Sequence[Tensor], shared_input: Tensor):
        """Return ``(task_outputs, shared_output)``.

        ``task_inputs`` has one tensor per task (all equal to the shared
        embedding at the first layer); ``shared_output`` is None unless
        the layer was built ``with_shared_gate``.
        """
        if len(task_inputs) != self.num_tasks:
            raise ValueError(
                f"expected {self.num_tasks} task inputs, got {len(task_inputs)}"
            )
        shared_out = self.shared_expert_group(shared_input)
        task_outputs: List[Tensor] = []
        all_expert_outputs = []
        for i, task_input in enumerate(task_inputs):
            private = self.task_expert_groups[i](task_input)
            all_expert_outputs.append(private)
            mixed = ops.concat([private, shared_out], axis=1)
            weights = ops.softmax(self.task_gates[i](task_input), axis=-1)
            batch, count = weights.shape
            task_outputs.append(
                (mixed * weights.reshape(batch, count, 1)).sum(axis=1)
            )
        shared_mix: Optional[Tensor] = None
        if self.shared_gate is not None:
            everything = ops.concat(all_expert_outputs + [shared_out], axis=1)
            weights = ops.softmax(self.shared_gate(shared_input), axis=-1)
            batch, count = weights.shape
            shared_mix = (everything * weights.reshape(batch, count, 1)).sum(axis=1)
        return task_outputs, shared_mix


class AITMTransfer(Module):
    """Adaptive information transfer between two sequential task towers.

    Combines the previous task's transferred representation ``p`` and
    the current tower's representation ``q`` with a tiny self-attention
    over the two candidates (Xi et al., 2021, Eq. (4)-(6)).
    """

    def __init__(self, dim: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.dim = dim
        self.query = Linear(dim, dim, rng, bias=False, weight_init="xavier_uniform")
        self.key = Linear(dim, dim, rng, bias=False, weight_init="xavier_uniform")
        self.value = Linear(dim, dim, rng, bias=False, weight_init="xavier_uniform")

    def forward(self, transferred: Tensor, current: Tensor) -> Tensor:
        candidates = ops.stack([transferred, current], axis=1)  # (batch, 2, dim)
        q = self.query(candidates)
        k = self.key(candidates)
        v = self.value(candidates)
        scores = (q * k).sum(axis=-1) * (1.0 / np.sqrt(self.dim))  # (batch, 2)
        weights = ops.softmax(scores, axis=-1)
        batch, count = weights.shape
        return (v * weights.reshape(batch, count, 1)).sum(axis=1)
