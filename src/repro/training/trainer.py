"""The training loop facade, with optional fault tolerance.

``Trainer(model, config)`` behaves exactly as it always has, but is now
a thin assembly layer over the composable
:class:`~repro.training.engine.TrainingEngine`: it builds the default
callback stack and delegates ``fit``.  Passing a
:class:`~repro.reliability.ReliabilityConfig` additionally arms:

* **checkpoint/resume** -- periodic checksummed snapshots of the full
  training state via
  :class:`~repro.training.callbacks.CheckpointCallback`;
  ``fit(resume_from=...)`` continues a killed run bit-exactly;
* **divergence guards** -- a
  :class:`~repro.training.callbacks.LossGuardCallback` rolls the model
  and optimizer back to the last good state on a NaN/inf or rolling
  z-score spike, multiplies the learning rate by ``lr_factor``, and
  records a :class:`~repro.reliability.GuardEvent` in the history;
* **propensity monitoring** -- a
  :class:`~repro.training.callbacks.PropensityMonitorCallback` probes
  the CTR head after each epoch and surfaces ``o_hat`` pile-up at the
  clip boundary;
* **fault injection** -- a
  :class:`~repro.training.callbacks.FaultInjectionCallback` corrupts
  the batch stream, used by tests and chaos drills.

Extra callbacks (e.g. an
:class:`~repro.training.callbacks.LRSchedulerCallback`) append after
the default stack via the ``callbacks`` constructor argument.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence

from repro.data.dataset import InteractionDataset
from repro.models.base import MultiTaskModel
from repro.optim import Adam
from repro.reliability.config import ReliabilityConfig
from repro.training.callbacks import (
    Callback,
    CheckpointCallback,
    FaultInjectionCallback,
    LossGuardCallback,
    OpProfilerCallback,
    PropensityMonitorCallback,
    ValidationCallback,
)
from repro.training.config import TrainConfig
from repro.training.engine import create_engine
from repro.training.history import TrainingHistory

__all__ = ["Trainer", "TrainingHistory", "default_callbacks"]


def default_callbacks(
    config: TrainConfig, reliability: Optional[ReliabilityConfig] = None
) -> List[Callback]:
    """The callback stack equivalent to the pre-engine monolith.

    Registration order is load-bearing (see
    :mod:`repro.training.callbacks.base`): fault injection corrupts the
    batch before the guard classifies its loss; at epoch end the
    propensity monitor and validation run before the checkpoint save so
    the snapshot carries fresh events and early-stopping state.
    """
    callbacks: List[Callback] = []
    if reliability is not None and reliability.fault_injector is not None:
        callbacks.append(FaultInjectionCallback(reliability.fault_injector))
    if reliability is not None and reliability.guard is not None:
        callbacks.append(LossGuardCallback(reliability.guard))
    if reliability is not None and reliability.propensity_check_sample > 0:
        callbacks.append(
            PropensityMonitorCallback(
                sample=reliability.propensity_check_sample,
                threshold=reliability.propensity_collapse_threshold,
            )
        )
    callbacks.append(ValidationCallback(patience=config.early_stopping_patience))
    if reliability is not None and reliability.checkpoint_dir is not None:
        callbacks.append(
            CheckpointCallback(
                reliability.checkpoint_dir,
                keep=reliability.keep_checkpoints,
                every_n_batches=reliability.checkpoint_every_n_batches,
            )
        )
    if config.profile_ops:
        callbacks.append(OpProfilerCallback())
    return callbacks


class Trainer:
    """Trains one model with the paper's protocol (Adam + L2).

    The ``lambda_2 ||theta||^2`` regularizer of Eq. (14) is applied as
    optimizer weight decay.
    """

    def __init__(
        self,
        model: MultiTaskModel,
        config: TrainConfig,
        reliability: Optional[ReliabilityConfig] = None,
        callbacks: Sequence[Callback] = (),
    ) -> None:
        self.model = model
        self.config = config.validate()
        self.reliability = reliability
        self.optimizer = Adam(
            model.parameters(),
            lr=config.learning_rate,
            weight_decay=config.weight_decay,
        )
        self.extra_callbacks: List[Callback] = list(callbacks)
        self.engine = create_engine(model, config, optimizer=self.optimizer)

    # ------------------------------------------------------------------
    def fit(
        self,
        train: InteractionDataset,
        validation: Optional[InteractionDataset] = None,
        resume_from: "Path | str | None" = None,
    ) -> TrainingHistory:
        """Train for up to ``config.epochs`` epochs.

        When ``validation`` is given and early stopping is enabled,
        training stops after ``early_stopping_patience`` epochs without
        improvement in entire-space CVR AUC (falling back to the
        click-space AUC when the dataset has no oracle).

        ``resume_from`` accepts a checkpoint file or a checkpoint
        directory (the newest *valid* snapshot is used); the run then
        continues bit-exactly from where the snapshot was taken.
        """
        callbacks = default_callbacks(self.config, self.reliability)
        callbacks.extend(self.extra_callbacks)
        return self.engine.fit(
            train,
            validation=validation,
            resume_from=resume_from,
            callbacks=callbacks,
        )
