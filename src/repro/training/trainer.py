"""The training loop, with optional fault tolerance.

``Trainer(model, config)`` behaves exactly as it always has.  Passing a
:class:`~repro.reliability.ReliabilityConfig` additionally arms:

* **checkpoint/resume** -- periodic checksummed snapshots of the full
  training state (parameters, Adam moments, RNG streams, history, loop
  counters) via :class:`~repro.reliability.CheckpointManager`;
  ``fit(resume_from=...)`` continues a killed run bit-exactly, because
  the snapshot stores the trainer RNG state *at epoch start* and the
  number of batches already consumed, so the resumed run re-draws the
  identical shuffle permutation and skips forward;
* **divergence guards** -- a :class:`~repro.reliability.LossGuard`
  classifies every batch loss; on a NaN/inf or rolling z-score spike
  the trainer rolls the model and optimizer back to the last good
  state, multiplies the learning rate by ``lr_factor``, and records a
  :class:`~repro.reliability.GuardEvent` in the history instead of
  silently training on garbage;
* **propensity monitoring** -- after each epoch the CTR head is probed
  on a fixed sample and a pile-up of ``o_hat`` at the clip boundary is
  surfaced as a :class:`~repro.reliability.PropensityCollapseWarning`;
* **fault injection** -- a seeded
  :class:`~repro.reliability.FaultInjector` corrupts the batch stream,
  used by tests and chaos drills to prove the guards fire.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

import numpy as np

from repro.autograd.sparse import sparse_grads
from repro.data.batching import batch_iterator
from repro.data.dataset import InteractionDataset
from repro.models.base import MultiTaskModel
from repro.nn.embedding import trusted_indices
from repro.optim import Adam, clip_global_norm
from repro.perf import OpProfiler
from repro.reliability.checkpoint import (
    CheckpointManager,
    TrainingSnapshot,
    load_snapshot,
)
from repro.reliability.config import ReliabilityConfig
from repro.reliability.errors import CheckpointCorruptError, DivergenceError
from repro.reliability.guards import GuardEvent, LossGuard, warn_on_propensity_collapse
from repro.training.config import TrainConfig
from repro.training.evaluation import evaluate_model
from repro.utils.logging import get_logger, log_event

logger = get_logger("training")

#: Checkpoint step ids order epoch boundaries after any mid-epoch save.
_STEPS_PER_EPOCH_KEY = 1_000_000


@dataclass
class TrainingHistory:
    """Per-epoch training record (plus any guard interventions)."""

    epoch_losses: List[float] = field(default_factory=list)
    validation_cvr_auc: List[float] = field(default_factory=list)
    stopped_early: bool = False
    #: Guard interventions and structured warnings, in occurrence order.
    events: List[GuardEvent] = field(default_factory=list)
    #: Op-level profile of the fit loop (``OpProfiler.summary()``)
    #: recorded when ``TrainConfig.profile_ops`` is set.
    op_profile: Optional[Dict[str, Any]] = None

    @property
    def n_epochs_run(self) -> int:
        return len(self.epoch_losses)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "epoch_losses": list(self.epoch_losses),
            "validation_cvr_auc": list(self.validation_cvr_auc),
            "stopped_early": self.stopped_early,
            "events": [event.to_dict() for event in self.events],
            "op_profile": self.op_profile,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TrainingHistory":
        return cls(
            epoch_losses=list(data.get("epoch_losses", [])),
            validation_cvr_auc=list(data.get("validation_cvr_auc", [])),
            stopped_early=bool(data.get("stopped_early", False)),
            events=[GuardEvent.from_dict(e) for e in data.get("events", [])],
            op_profile=data.get("op_profile"),
        )


class Trainer:
    """Trains one model with the paper's protocol (Adam + L2).

    The ``lambda_2 ||theta||^2`` regularizer of Eq. (14) is applied as
    optimizer weight decay.
    """

    def __init__(
        self,
        model: MultiTaskModel,
        config: TrainConfig,
        reliability: Optional[ReliabilityConfig] = None,
    ) -> None:
        self.model = model
        self.config = config.validate()
        self.reliability = reliability
        self.optimizer = Adam(
            model.parameters(),
            lr=config.learning_rate,
            weight_decay=config.weight_decay,
        )
        self._rng = np.random.default_rng(config.seed)
        self._checkpoints: Optional[CheckpointManager] = None
        self._guard: Optional[LossGuard] = None
        if reliability is not None:
            if reliability.checkpoint_dir is not None:
                self._checkpoints = CheckpointManager(
                    reliability.checkpoint_dir, keep=reliability.keep_checkpoints
                )
            if reliability.guard is not None:
                self._guard = LossGuard(reliability.guard)
        self._last_good: Optional[Dict[str, Any]] = None

    # ------------------------------------------------------------------
    def fit(
        self,
        train: InteractionDataset,
        validation: Optional[InteractionDataset] = None,
        resume_from: "Path | str | None" = None,
    ) -> TrainingHistory:
        """Train for up to ``config.epochs`` epochs.

        When ``validation`` is given and early stopping is enabled,
        training stops after ``early_stopping_patience`` epochs without
        improvement in entire-space CVR AUC (falling back to the
        click-space AUC when the dataset has no oracle).

        ``resume_from`` accepts a checkpoint file or a checkpoint
        directory (the newest *valid* snapshot is used); the run then
        continues bit-exactly from where the snapshot was taken.
        """
        rel = self.reliability
        history = TrainingHistory()
        best_metric = -np.inf
        stale = 0
        start_epoch = 0
        skip_batches = 0
        epoch_loss_sum = 0.0
        n_batches_done = 0

        if resume_from is not None:
            snapshot = self._resolve_resume(resume_from)
            self._restore(snapshot)
            history = TrainingHistory.from_dict(snapshot.history)
            best_metric = snapshot.best_metric
            stale = snapshot.stale
            start_epoch = snapshot.epoch
            skip_batches = snapshot.batch_in_epoch
            epoch_loss_sum = snapshot.epoch_loss_sum
            n_batches_done = snapshot.n_batches_done
            log_event(
                logger,
                "resume",
                epoch=start_epoch,
                batch=skip_batches,
                lr=self.optimizer.lr,
            )
            if history.stopped_early:
                # The snapshotted run already finished via early
                # stopping; there is nothing left to train.
                log_event(logger, "resume_noop", reason="stopped_early")
                self.model.eval()
                return history

        self.model.train()
        self._refresh_last_good()
        # One pass over the datasets proves every sparse id is in
        # range, which lets the embedding layer skip its per-lookup
        # bounds checks for the whole run (trusted_indices).
        train.validate()
        if validation is not None:
            validation.validate()
        profiler = OpProfiler() if self.config.profile_ops else None
        with contextlib.ExitStack() as stack:
            if profiler is not None:
                stack.enter_context(profiler)
            if self.config.sparse_embedding_grads:
                stack.enter_context(sparse_grads(True))
            stack.enter_context(trusted_indices())
            for epoch in range(start_epoch, self.config.epochs):
                resuming_epoch = epoch == start_epoch and skip_batches > 0
                if not resuming_epoch:
                    epoch_loss_sum = 0.0
                    n_batches_done = 0
                epoch_start_rng = self._rng.bit_generator.state
                clean_steps = 0
                for i, batch in enumerate(
                    batch_iterator(
                        train,
                        self.config.batch_size,
                        rng=self._rng,
                        shuffle=self.config.shuffle,
                        drop_last=self.config.drop_last,
                    )
                ):
                    if resuming_epoch and i < skip_batches:
                        continue
                    if rel is not None and rel.fault_injector is not None:
                        batch = rel.fault_injector.corrupt(batch, epoch, i)
                    loss = self.model.loss(batch)
                    value = loss.item()
                    if self._guard is not None:
                        reason = self._guard.observe(value)
                        if reason is not None:
                            self._handle_trip(history, epoch, i, reason, value)
                            continue
                    self.optimizer.zero_grad()
                    loss.backward()
                    if self.config.grad_clip is not None:
                        clip_global_norm(self.model.parameters(), self.config.grad_clip)
                    self.optimizer.step()
                    epoch_loss_sum += value
                    n_batches_done += 1
                    clean_steps += 1
                    if (
                        self._guard is not None
                        and clean_steps % self._guard.config.refresh_every == 0
                    ):
                        self._refresh_last_good()
                    if (
                        self._checkpoints is not None
                        and rel.checkpoint_every_n_batches is not None
                        and (i + 1) % rel.checkpoint_every_n_batches == 0
                    ):
                        self._save_snapshot(
                            history,
                            epoch=epoch,
                            batch_in_epoch=i + 1,
                            rng_state=epoch_start_rng,
                            epoch_loss_sum=epoch_loss_sum,
                            n_batches_done=n_batches_done,
                            best_metric=best_metric,
                            stale=stale,
                        )
                history.epoch_losses.append(epoch_loss_sum / max(n_batches_done, 1))
                logger.debug(
                    "epoch %d: mean loss %.5f", epoch, history.epoch_losses[-1]
                )
                self._check_propensity(train, epoch, history)

                if validation is not None:
                    result = evaluate_model(self.model, validation)
                    metric = (
                        result.cvr_auc_d
                        if result.cvr_auc_d is not None
                        else (result.cvr_auc_o or 0.5)
                    )
                    history.validation_cvr_auc.append(metric)
                    patience = self.config.early_stopping_patience
                    if patience is not None:
                        if metric > best_metric + 1e-6:
                            best_metric = metric
                            stale = 0
                        else:
                            stale += 1
                            if stale >= patience:
                                history.stopped_early = True
                    self.model.train()

                if self._checkpoints is not None:
                    # Epoch-boundary snapshot: positioned at the *start* of
                    # the next epoch, so the stored RNG state is the one the
                    # next shuffle permutation will be drawn from.
                    self._save_snapshot(
                        history,
                        epoch=epoch + 1,
                        batch_in_epoch=0,
                        rng_state=self._rng.bit_generator.state,
                        epoch_loss_sum=0.0,
                        n_batches_done=0,
                        best_metric=best_metric,
                        stale=stale,
                    )
                if history.stopped_early:
                    break
        if profiler is not None:
            history.op_profile = profiler.summary()
        self.model.eval()
        return history

    # -- divergence handling -------------------------------------------
    def _handle_trip(
        self,
        history: TrainingHistory,
        epoch: int,
        batch: int,
        reason: str,
        value: float,
    ) -> None:
        guard = self._guard
        assert guard is not None
        if guard.trips > guard.config.max_trips:
            raise DivergenceError(
                f"loss guard tripped {guard.trips} times (last: {reason} at "
                f"epoch {epoch} batch {batch}); training is not recovering"
            )
        self._rollback_last_good()
        new_lr = max(
            self.optimizer.lr * guard.config.lr_factor, guard.config.min_lr
        )
        self.optimizer.lr = new_lr
        event = GuardEvent(
            epoch=epoch,
            batch=batch,
            reason=reason,
            value=float(value),
            action="rollback_lr_halved",
            lr_after=new_lr,
        )
        history.events.append(event)
        # Re-capture the rollback point so the halved learning rate (and
        # the restored weights) survive a consecutive trip.
        self._refresh_last_good()
        log_event(
            logger,
            "loss_guard_trip",
            level=30,  # WARNING
            reason=reason,
            epoch=epoch,
            batch=batch,
            value=value,
            lr_after=new_lr,
        )

    def _refresh_last_good(self) -> None:
        if self._guard is None and self._checkpoints is None:
            return
        self._last_good = {
            "model": self.model.state_dict(),
            "optimizer": self.optimizer.state_dict(),
        }

    def _rollback_last_good(self) -> None:
        if self._last_good is None:
            return
        self.model.load_state_dict(self._last_good["model"])
        self.optimizer.load_state_dict(self._last_good["optimizer"])

    # -- propensity monitoring -----------------------------------------
    def _check_propensity(
        self, train: InteractionDataset, epoch: int, history: TrainingHistory
    ) -> None:
        rel = self.reliability
        if rel is None or rel.propensity_check_sample <= 0:
            return
        floor = getattr(self.model.config, "propensity_floor", None)
        if not floor:
            return
        n = min(len(train), rel.propensity_check_sample)
        sample = train.subset(np.arange(n)).full_batch()
        preds = self.model.predict(sample)
        fraction = warn_on_propensity_collapse(
            preds.ctr,
            floor,
            threshold=rel.propensity_collapse_threshold,
            context=f"epoch {epoch}",
        )
        if fraction is not None:
            history.events.append(
                GuardEvent(
                    epoch=epoch,
                    batch=-1,
                    reason="propensity_collapse",
                    value=fraction,
                    action="warn",
                )
            )

    # -- checkpoint plumbing -------------------------------------------
    def _save_snapshot(
        self,
        history: TrainingHistory,
        epoch: int,
        batch_in_epoch: int,
        rng_state: Dict[str, Any],
        epoch_loss_sum: float,
        n_batches_done: int,
        best_metric: float,
        stale: int,
    ) -> None:
        assert self._checkpoints is not None
        metadata: Dict[str, Any] = {
            "model_name": getattr(self.model, "model_name", type(self.model).__name__),
        }
        if self._guard is not None:
            metadata["guard_recent"] = self._guard.recent_losses
            metadata["guard_trips"] = self._guard.trips
        snapshot = TrainingSnapshot(
            model_state=self.model.state_dict(),
            optimizer_state=self.optimizer.state_dict(),
            trainer_rng_state=rng_state,
            module_rng_states=[
                g.bit_generator.state for g in self._module_rngs()
            ],
            history=history.to_dict(),
            epoch=epoch,
            batch_in_epoch=batch_in_epoch,
            epoch_loss_sum=epoch_loss_sum,
            n_batches_done=n_batches_done,
            best_metric=float(best_metric),
            stale=stale,
            metadata=metadata,
        )
        step = epoch * _STEPS_PER_EPOCH_KEY + batch_in_epoch
        path = self._checkpoints.save(snapshot, step)
        log_event(logger, "checkpoint_saved", path=str(path), epoch=epoch, batch=batch_in_epoch)

    def _restore(self, snapshot: TrainingSnapshot) -> None:
        self.model.load_state_dict(snapshot.model_state)
        self.optimizer.load_state_dict(snapshot.optimizer_state)
        if snapshot.trainer_rng_state is not None:
            self._rng.bit_generator.state = snapshot.trainer_rng_state
        rngs = self._module_rngs()
        if snapshot.module_rng_states:
            if len(snapshot.module_rng_states) != len(rngs):
                raise CheckpointCorruptError(
                    f"snapshot has {len(snapshot.module_rng_states)} module "
                    f"RNG states, model has {len(rngs)}"
                )
            for gen, state in zip(rngs, snapshot.module_rng_states):
                gen.bit_generator.state = state
        if self._guard is not None:
            for value in snapshot.metadata.get("guard_recent", []):
                self._guard.record(value)
            self._guard.trips = int(snapshot.metadata.get("guard_trips", 0))

    def _resolve_resume(self, resume_from: "Path | str") -> TrainingSnapshot:
        path = Path(resume_from)
        if path.is_dir():
            manager = CheckpointManager(path, keep=max(
                self.reliability.keep_checkpoints if self.reliability else 1, 1
            ))
            latest = manager.latest()
            if latest is None:
                raise CheckpointCorruptError(
                    f"no valid checkpoint found in {path}"
                )
            return manager.load(latest)
        return load_snapshot(path)

    def _module_rngs(self) -> List[np.random.Generator]:
        """Every generator held by the model's modules, in stable order.

        Stochastic layers (dropout) draw from these during forward
        passes; capturing them makes resumed training bit-exact even
        when such layers are active.
        """
        rngs: List[np.random.Generator] = []
        seen = set()
        for module in self.model.modules():
            for name in sorted(vars(module)):
                value = vars(module)[name]
                if isinstance(value, np.random.Generator) and id(value) not in seen:
                    seen.add(id(value))
                    rngs.append(value)
        return rngs
