"""The training loop."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.data.batching import batch_iterator
from repro.data.dataset import InteractionDataset
from repro.models.base import MultiTaskModel
from repro.optim import Adam, clip_global_norm
from repro.training.config import TrainConfig
from repro.training.evaluation import evaluate_model
from repro.utils.logging import get_logger

logger = get_logger("training")


@dataclass
class TrainingHistory:
    """Per-epoch training record."""

    epoch_losses: List[float] = field(default_factory=list)
    validation_cvr_auc: List[float] = field(default_factory=list)
    stopped_early: bool = False

    @property
    def n_epochs_run(self) -> int:
        return len(self.epoch_losses)


class Trainer:
    """Trains one model with the paper's protocol (Adam + L2).

    The ``lambda_2 ||theta||^2`` regularizer of Eq. (14) is applied as
    optimizer weight decay.
    """

    def __init__(self, model: MultiTaskModel, config: TrainConfig) -> None:
        self.model = model
        self.config = config
        self.optimizer = Adam(
            model.parameters(),
            lr=config.learning_rate,
            weight_decay=config.weight_decay,
        )
        self._rng = np.random.default_rng(config.seed)

    def fit(
        self,
        train: InteractionDataset,
        validation: Optional[InteractionDataset] = None,
    ) -> TrainingHistory:
        """Train for up to ``config.epochs`` epochs.

        When ``validation`` is given and early stopping is enabled,
        training stops after ``early_stopping_patience`` epochs without
        improvement in entire-space CVR AUC (falling back to the
        click-space AUC when the dataset has no oracle).
        """
        history = TrainingHistory()
        best_metric = -np.inf
        stale = 0
        self.model.train()
        for epoch in range(self.config.epochs):
            epoch_loss = 0.0
            n_batches = 0
            for batch in batch_iterator(
                train,
                self.config.batch_size,
                rng=self._rng,
                shuffle=self.config.shuffle,
                drop_last=self.config.drop_last,
            ):
                loss = self.model.loss(batch)
                self.optimizer.zero_grad()
                loss.backward()
                if self.config.grad_clip is not None:
                    clip_global_norm(self.model.parameters(), self.config.grad_clip)
                self.optimizer.step()
                epoch_loss += loss.item()
                n_batches += 1
            history.epoch_losses.append(epoch_loss / max(n_batches, 1))
            logger.debug(
                "epoch %d: mean loss %.5f", epoch, history.epoch_losses[-1]
            )

            if validation is None:
                continue
            result = evaluate_model(self.model, validation)
            metric = (
                result.cvr_auc_d
                if result.cvr_auc_d is not None
                else (result.cvr_auc_o or 0.5)
            )
            history.validation_cvr_auc.append(metric)
            patience = self.config.early_stopping_patience
            if patience is not None:
                if metric > best_metric + 1e-6:
                    best_metric = metric
                    stale = 0
                else:
                    stale += 1
                    if stale >= patience:
                        history.stopped_early = True
                        break
            self.model.train()
        self.model.eval()
        return history
