"""``dcmt-train``: train any registered model on CSV exposure logs.

The adoption entry point: point it at your train/test CSVs (Ali-CCP
style; see :mod:`repro.data.loaders`), pick a model from the registry,
and get metrics plus an optional checkpoint::

    dcmt-train --model dcmt --train train.csv --test test.csv \\
        --dense-features price score --wide-features cross_cat \\
        --epochs 5 --checkpoint dcmt.npz
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.data.loaders import ColumnSpec, load_csv_split
from repro.models import ModelConfig, MODEL_REGISTRY, build_model
from repro.nn.serialization import save_checkpoint
from repro.training import TrainConfig, evaluate_model, fit_model
from repro.utils.logging import enable_console_logging


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dcmt-train",
        description="Train a CVR model on CSV exposure logs.",
    )
    parser.add_argument("--model", choices=sorted(MODEL_REGISTRY), default="dcmt")
    parser.add_argument("--train", required=True, help="training CSV path")
    parser.add_argument("--test", required=True, help="evaluation CSV path")
    parser.add_argument("--dense-features", nargs="*", default=[])
    parser.add_argument("--wide-features", nargs="*", default=[])
    parser.add_argument("--embedding-dim", type=int, default=8)
    parser.add_argument(
        "--hidden-sizes", type=int, nargs="+", default=[32, 16]
    )
    parser.add_argument("--epochs", type=int, default=5)
    parser.add_argument("--batch-size", type=int, default=1024)
    parser.add_argument("--learning-rate", type=float, default=0.003)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--checkpoint", default=None, help="write a .npz checkpoint here"
    )
    parser.add_argument("--verbose", action="store_true")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.verbose:
        enable_console_logging()

    spec = ColumnSpec(
        dense_features=tuple(args.dense_features),
        wide_features=tuple(args.wide_features),
    )
    train, test = load_csv_split(args.train, args.test, spec=spec)
    print(
        f"loaded {len(train)} train / {len(test)} test exposures "
        f"({train.n_clicks} clicks, {train.n_conversions} conversions)"
    )

    model = build_model(
        args.model,
        train.schema,
        ModelConfig(
            embedding_dim=args.embedding_dim,
            hidden_sizes=tuple(args.hidden_sizes),
            seed=args.seed,
        ),
    )
    print(f"model: {args.model} ({model.num_parameters()} parameters)")

    history = fit_model(
        model,
        train,
        TrainConfig(
            epochs=args.epochs,
            batch_size=args.batch_size,
            learning_rate=args.learning_rate,
            seed=args.seed,
        ),
    )
    print(f"epoch losses: {[round(x, 5) for x in history.epoch_losses]}")

    result = evaluate_model(model, test)
    print(f"CTR AUC:   {result.ctr_auc:.4f}")
    if result.cvr_auc_o is not None:
        print(f"CVR AUC (click space): {result.cvr_auc_o:.4f}")
    if result.ctcvr_auc is not None:
        print(f"CTCVR AUC: {result.ctcvr_auc:.4f}")
    print(f"mean CVR prediction: {result.avg_cvr_prediction:.4f}")

    if args.checkpoint:
        save_checkpoint(
            model,
            args.checkpoint,
            metadata={"model": args.model, "train_csv": args.train},
        )
        print(f"checkpoint written to {args.checkpoint}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
