"""Training and evaluation harness.

:class:`~repro.training.trainer.Trainer` runs the paper's training
protocol (Adam, batch 1024, up to 5 epochs, L2 weight decay as
``lambda_2``); :mod:`~repro.training.evaluation` computes the offline
metrics of Table IV plus the entire-space diagnostics enabled by the
synthetic oracle.  Fault tolerance (checkpoint/resume, divergence
guards, fault injection) is armed by passing a
:class:`~repro.reliability.ReliabilityConfig` to the trainer.
"""

from repro.reliability.config import ReliabilityConfig
from repro.training.config import TrainConfig
from repro.training.trainer import Trainer, TrainingHistory
from repro.training.evaluation import EvaluationResult, evaluate_model

__all__ = [
    "TrainConfig",
    "ReliabilityConfig",
    "Trainer",
    "TrainingHistory",
    "EvaluationResult",
    "evaluate_model",
]
