"""Training and evaluation harness.

The composable :class:`~repro.training.engine.TrainingEngine` owns the
canonical step loop; production concerns (checkpoint/resume, divergence
guards, propensity monitoring, fault injection, profiling, LR
scheduling, validation/early stopping) attach as
:mod:`~repro.training.callbacks`.  :class:`~repro.training.trainer.Trainer`
is the backward-compatible facade that assembles the default stack from
a :class:`~repro.reliability.ReliabilityConfig`, and
:func:`~repro.training.engine.fit_model` is the one-call functional
form used by the experiment runners and examples.
:mod:`~repro.training.evaluation` computes the offline metrics of
Table IV plus the entire-space diagnostics enabled by the synthetic
oracle.
"""

from repro.reliability.config import ReliabilityConfig
from repro.training.config import TrainConfig
from repro.training.engine import TrainingEngine, create_engine, fit_model
from repro.training.history import TrainingHistory
from repro.training.parallel import (
    ShardedTrainingEngine,
    TrainerChaosDrill,
    TrainerDrillReport,
    UnsupervisedWorkerPool,
    WorkerSupervisor,
)
from repro.training.trainer import Trainer, default_callbacks
from repro.training.evaluation import (
    EvaluationResult,
    StreamingAUC,
    StreamingECE,
    StreamingEvaluationResult,
    StreamingLogLoss,
    StreamingMean,
    evaluate_model,
    evaluate_model_streaming,
)
from repro.training.callbacks import (
    Callback,
    CheckpointCallback,
    FaultInjectionCallback,
    LossGuardCallback,
    LRSchedulerCallback,
    OpProfilerCallback,
    PropensityMonitorCallback,
    ValidationCallback,
)

__all__ = [
    "TrainConfig",
    "ReliabilityConfig",
    "Trainer",
    "TrainingEngine",
    "TrainingHistory",
    "ShardedTrainingEngine",
    "TrainerChaosDrill",
    "TrainerDrillReport",
    "UnsupervisedWorkerPool",
    "WorkerSupervisor",
    "create_engine",
    "fit_model",
    "default_callbacks",
    "Callback",
    "CheckpointCallback",
    "FaultInjectionCallback",
    "LossGuardCallback",
    "LRSchedulerCallback",
    "OpProfilerCallback",
    "PropensityMonitorCallback",
    "ValidationCallback",
    "EvaluationResult",
    "evaluate_model",
    "StreamingAUC",
    "StreamingECE",
    "StreamingEvaluationResult",
    "StreamingLogLoss",
    "StreamingMean",
    "evaluate_model_streaming",
]
