"""Hyper-parameter search utilities.

The Fig. 8 sweeps are one-dimensional; these helpers generalise to
grids and random search for downstream users.  The evaluation callable
receives a parameter dict and returns a score; all trials are recorded
so the full response surface can be inspected or rendered.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Sequence

import numpy as np

from repro.utils.logging import get_logger

logger = get_logger("training.tuning")


@dataclass(frozen=True)
class Trial:
    """One evaluated parameter combination."""

    params: Dict[str, Any]
    score: float


@dataclass
class SearchResult:
    """All trials plus the winner."""

    trials: List[Trial]
    maximize: bool = True

    @property
    def best(self) -> Trial:
        if not self.trials:
            raise ValueError("no trials recorded")
        key = (lambda t: t.score) if self.maximize else (lambda t: -t.score)
        return max(self.trials, key=key)

    @property
    def best_params(self) -> Dict[str, Any]:
        return self.best.params

    @property
    def best_score(self) -> float:
        return self.best.score

    def top(self, k: int) -> List[Trial]:
        """The ``k`` best trials, best first."""
        reverse = self.maximize
        return sorted(self.trials, key=lambda t: t.score, reverse=reverse)[:k]


def grid_search(
    param_grid: Dict[str, Sequence[Any]],
    evaluate: Callable[[Dict[str, Any]], float],
    maximize: bool = True,
) -> SearchResult:
    """Exhaustive search over the Cartesian product of ``param_grid``.

    ``evaluate`` exceptions are not swallowed: a failing configuration
    should fail loudly rather than silently score poorly.
    """
    if not param_grid:
        raise ValueError("param_grid must not be empty")
    for name, values in param_grid.items():
        if not values:
            raise ValueError(f"parameter {name!r} has no candidate values")
    names = sorted(param_grid)
    trials: List[Trial] = []
    for combination in itertools.product(*(param_grid[n] for n in names)):
        params = dict(zip(names, combination))
        score = float(evaluate(params))
        trials.append(Trial(params=params, score=score))
        logger.debug("grid trial %s -> %.5f", params, score)
    return SearchResult(trials=trials, maximize=maximize)


def random_search(
    param_sampler: Dict[str, Callable[[np.random.Generator], Any]],
    evaluate: Callable[[Dict[str, Any]], float],
    n_trials: int,
    rng: np.random.Generator,
    maximize: bool = True,
) -> SearchResult:
    """Random search: each parameter has a sampler ``rng -> value``."""
    if n_trials < 1:
        raise ValueError(f"n_trials must be >= 1, got {n_trials}")
    if not param_sampler:
        raise ValueError("param_sampler must not be empty")
    trials: List[Trial] = []
    for _ in range(n_trials):
        params = {name: sampler(rng) for name, sampler in sorted(param_sampler.items())}
        score = float(evaluate(params))
        trials.append(Trial(params=params, score=score))
        logger.debug("random trial %s -> %.5f", params, score)
    return SearchResult(trials=trials, maximize=maximize)


def choice(values: Sequence[Any]) -> Callable[[np.random.Generator], Any]:
    """Sampler: uniform choice over ``values``."""
    options = list(values)
    if not options:
        raise ValueError("choice needs at least one value")
    return lambda rng: options[int(rng.integers(0, len(options)))]


def log_uniform(low: float, high: float) -> Callable[[np.random.Generator], float]:
    """Sampler: log-uniform over ``[low, high]`` (for learning rates,
    regularizer weights)."""
    if not 0 < low < high:
        raise ValueError(f"need 0 < low < high, got ({low}, {high})")
    return lambda rng: float(np.exp(rng.uniform(np.log(low), np.log(high))))
