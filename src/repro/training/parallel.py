"""Fault-tolerant data-parallel training: a supervised worker pool.

:class:`ShardedTrainingEngine` splits every batch into contiguous row
shards (:func:`repro.data.stream.shard_batch`), computes per-shard
gradients, and reduces them in a deterministic seeded order -- a
weighted left-fold over shard index, sparse-aware so embedding
gradients stay :class:`~repro.autograd.sparse.SparseRowGrad` end to
end.  The per-shard compute and the reduction are the *same functions*
whether shards run in a pool of forked ``multiprocessing`` workers or
serially in-process, which is what makes the headline property cheap
to state and test: **a K-worker parallel run is bit-exact with a
K-shard single-process run.**  (Sharded runs differ from the plain
unsharded engine by float non-associativity once ``K > 1``; the plain
engine is untouched and stays golden-pinned.)

The robustness layer is :class:`WorkerSupervisor`:

* **stateless workers** -- the parent holds the authoritative model and
  optimizer; each dispatch carries the full parameter arrays, so a
  worker that dies forfeits nothing but one shard of one step;
* **heartbeats** -- a daemon thread in every worker beats on the pipe,
  letting the supervisor tell "stuck but alive" (a straggler, worth a
  retry elsewhere) from "frozen or dead" (declare lost now);
* **per-dispatch deadlines** -- a missed deadline re-dispatches the
  shard to an idle survivor after a seeded-jitter backoff
  (:func:`~repro.reliability.timeouts.jittered_backoff`); repeated
  strikes get the worker SIGKILLed as lost;
* **graceful degradation** -- any worker loss abandons the in-flight
  step and re-shards it across survivors (bit-exactness explicitly
  traded for availability, recorded as a structured
  :class:`~repro.reliability.guards.GuardEvent` in the history);
  losing the ``min_workers`` quorum escalates to single-process
  fallback, or a hard
  :class:`~repro.reliability.errors.WorkerPoolError` abort when
  fallback is disabled.

Every supervision decision appends a line to a transcript keyed only
by ``(epoch, batch, step)`` -- no wall-clock values, no detection-path
detail -- so same-seed :class:`TrainerChaosDrill` runs produce
bit-identical transcripts even though kills race between pipe-EOF and
heartbeat-timeout detection.  :class:`UnsupervisedWorkerPool` is the
strawman the drill beats: same workers, blocking collect, no
heartbeats or deadlines -- one SIGKILL aborts it, one hang deadlocks
it (a watchdog raises in tests so CI never hangs for real).
"""

from __future__ import annotations

import contextlib
import multiprocessing as mp
import os
import signal
import threading
import time
from collections import deque
from dataclasses import dataclass
from multiprocessing import connection
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.autograd.sparse import SparseRowGrad, sparse_grads
from repro.data.dataset import Batch
from repro.data.stream import as_source, shard_batch
from repro.models.base import MultiTaskModel
from repro.nn.embedding import trusted_indices
from repro.optim.optimizer import Optimizer
from repro.reliability.errors import WorkerPoolError
from repro.reliability.faults import (
    WORKER_HANG,
    WORKER_KILL,
    WORKER_SLOW,
    TrainerFaultSpec,
    WorkerFault,
    build_trainer_fault_schedule,
)
from repro.reliability.guards import GuardEvent
from repro.reliability.timeouts import Deadline, jittered_backoff
from repro.training.callbacks.base import Callback, TrainingContext
from repro.training.config import TrainConfig
from repro.training.engine import TrainingEngine, collect_module_rngs
from repro.training.history import TrainingHistory
from repro.utils.logging import get_logger, log_event

logger = get_logger("training.parallel")

#: How long a hang-faulted worker sleeps -- far past any deadline, so a
#: hang is indistinguishable from a real wedged computation.
_HANG_SLEEP_S = 3600.0


# ----------------------------------------------------------------------
# Shard compute + deterministic reduction (shared by both venues).
# ----------------------------------------------------------------------
def reseed_module_rngs(
    rngs: Sequence[np.random.Generator],
    seed: int,
    epoch: int,
    batch_index: int,
    shard_index: int,
) -> None:
    """Reseed the model's module RNGs for one shard forward pass.

    Keyed by ``(seed, epoch, batch, shard, rng_index)`` through
    ``SeedSequence``, so stochastic layers (dropout) draw identically
    whether the shard runs in a forked worker or serially in-process --
    the venue-independence the bit-exactness guarantee rests on.
    """
    for i, gen in enumerate(rngs):
        fresh = np.random.default_rng(
            np.random.SeedSequence([seed, epoch, batch_index, shard_index, i])
        )
        gen.bit_generator.state = fresh.bit_generator.state


def compute_shard_gradients(
    model: MultiTaskModel,
    shard: Batch,
    rngs: Sequence[np.random.Generator],
    *,
    seed: int,
    epoch: int,
    batch_index: int,
    shard_index: int,
) -> Tuple[float, List[Any]]:
    """Loss value and per-parameter gradients for one shard.

    The single compute kernel of the parallel mode: workers call it on
    their forked model copy, the serial sharded path calls it on the
    parent model, and because it is the same function over the same
    bits the two venues agree exactly.
    """
    reseed_module_rngs(rngs, seed, epoch, batch_index, shard_index)
    model.zero_grad()
    loss = model.loss(shard)
    value = loss.item()
    loss.backward()
    return value, [p.grad for p in model.parameters()]


def reduce_shard_losses(values: Sequence[float], sizes: Sequence[int]) -> float:
    """Row-weighted mean of shard losses, folded in shard order."""
    if len(values) == 1:
        return values[0]
    total = float(sum(sizes))
    acc = 0.0
    for value, size in zip(values, sizes):
        acc += (size / total) * value
    return acc


def _scaled(grad: Any, weight: float) -> Any:
    if isinstance(grad, SparseRowGrad):
        return SparseRowGrad(grad.indices, grad.values * weight, grad.shape)
    return grad * weight


def _accumulated(acc: Any, grad: Any) -> Any:
    """Fold ``grad`` into ``acc`` (both already scaled; ``acc`` owned)."""
    if isinstance(acc, SparseRowGrad):
        if isinstance(grad, SparseRowGrad):
            return acc.merge(grad)
        return acc.add_to(grad)
    if isinstance(grad, SparseRowGrad):
        return grad.add_to(acc)
    acc += grad
    return acc


def reduce_shard_grads(
    shard_grads: Sequence[List[Any]], sizes: Sequence[int]
) -> List[Any]:
    """Row-weighted sum of per-shard gradient lists, in shard order.

    The fold visits shards strictly by index (never by arrival order),
    so the reduction is a pure function of the shard results -- the
    deterministic seeded aggregation order of the tentpole.  Sparse
    embedding gradients merge as :class:`SparseRowGrad` (union of rows,
    searchsorted adds) without ever densifying; a shard that left a
    parameter untouched (``None`` grad) contributes nothing.  With a
    single shard the gradients pass through untouched, keeping the
    degenerate K=1 case bit-exact with the plain engine.
    """
    if len(shard_grads) == 1:
        return list(shard_grads[0])
    total = float(sum(sizes))
    reduced: List[Any] = []
    for param_index in range(len(shard_grads[0])):
        acc: Any = None
        for shard_index, grads in enumerate(shard_grads):
            grad = grads[param_index]
            if grad is None:
                continue
            scaled = _scaled(grad, sizes[shard_index] / total)
            acc = scaled if acc is None else _accumulated(acc, scaled)
        reduced.append(acc)
    return reduced


# ----------------------------------------------------------------------
# Worker process: heartbeat thread + shard-compute loop over a pipe.
# ----------------------------------------------------------------------
def _encode_grad(grad: Any) -> Any:
    if grad is None:
        return None
    if isinstance(grad, SparseRowGrad):
        return ("sparse", grad.indices, grad.values, grad.shape)
    return ("dense", grad)


def _decode_grad(payload: Any) -> Any:
    if payload is None:
        return None
    if payload[0] == "sparse":
        return SparseRowGrad(payload[1], payload[2], payload[3])
    return payload[1]


def _heartbeat_loop(conn, lock, slot, interval_s, stop) -> None:
    while not stop.wait(interval_s):
        try:
            with lock:
                conn.send(("hb", slot))
        except (BrokenPipeError, OSError):
            return


def _worker_main(
    conn, slot: int, model: MultiTaskModel, sparse: bool, heartbeat_s: float
) -> None:
    """Forked worker: receive tasks, compute shard gradients, reply.

    Workers are stateless between tasks -- every task carries the full
    parameter arrays, so the parent never has to resynchronise a
    survivor after a loss.  The heartbeat thread shares the pipe under
    a lock; any traffic (beat or result) proves liveness to the
    supervisor.
    """
    params = model.parameters()
    rngs = collect_module_rngs(model)
    lock = threading.Lock()
    stop = threading.Event()
    threading.Thread(
        target=_heartbeat_loop,
        args=(conn, lock, slot, heartbeat_s, stop),
        daemon=True,
    ).start()
    model.train()
    with contextlib.ExitStack() as stack:
        if sparse:
            stack.enter_context(sparse_grads(True))
        stack.enter_context(trusted_indices())
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            if msg[0] == "stop":
                break
            _, task_id, step_key, arrays, shard, shard_index, fault = msg
            if fault == "hang":
                time.sleep(_HANG_SLEEP_S)
                continue  # never answer: the task is forfeit
            if isinstance(fault, float):
                time.sleep(fault)
            for param, array in zip(params, arrays):
                param.data = array
            seed, epoch, batch_index = step_key
            try:
                value, grads = compute_shard_gradients(
                    model,
                    shard,
                    rngs,
                    seed=seed,
                    epoch=epoch,
                    batch_index=batch_index,
                    shard_index=shard_index,
                )
                reply = (
                    "result",
                    task_id,
                    value,
                    [_encode_grad(g) for g in grads],
                )
            except Exception as exc:  # surfaced as a worker_error loss
                reply = ("error", task_id, f"{type(exc).__name__}: {exc}")
            try:
                with lock:
                    conn.send(reply)
            except (BrokenPipeError, OSError):
                break
    stop.set()


# ----------------------------------------------------------------------
# The supervisor.
# ----------------------------------------------------------------------
class _StepAbandoned(Exception):
    """Internal: a worker was lost mid-step; re-shard and retry."""


class _WorkerHandle:
    __slots__ = (
        "slot",
        "name",
        "process",
        "conn",
        "alive",
        "last_heartbeat",
        "strikes",
        "inflight",
    )

    def __init__(self, slot, process, conn, clock) -> None:
        self.slot = slot
        self.name = f"worker-{slot}"
        self.process = process
        self.conn = conn
        self.alive = True
        self.last_heartbeat = clock()
        self.strikes = 0
        self.inflight = 0


@dataclass
class WorkerPoolStats:
    """Supervision counters (timing-free; safe to assert in tests)."""

    dispatches: int = 0
    results: int = 0
    stale_results: int = 0
    deadline_misses: int = 0
    redispatches: int = 0
    workers_lost: int = 0
    resharded: int = 0
    faults_applied: int = 0


@dataclass
class StepResult:
    """One aggregated optimizer step's worth of gradients."""

    loss_value: float
    grads: List[Any]
    n_shards: int


def _spawn_workers(
    model: MultiTaskModel, config: TrainConfig, n_workers: int, clock
) -> List[_WorkerHandle]:
    """Fork ``n_workers`` shard-compute processes, one duplex pipe each."""
    if "fork" not in mp.get_all_start_methods():
        raise WorkerPoolError(
            "data-parallel training requires the 'fork' start method"
        )
    ctx = mp.get_context("fork")
    handles: List[_WorkerHandle] = []
    for slot in range(n_workers):
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        process = ctx.Process(
            target=_worker_main,
            args=(
                child_conn,
                slot,
                model,
                config.sparse_embedding_grads,
                config.heartbeat_interval_s,
            ),
            name=f"trainer-worker-{slot}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        handles.append(_WorkerHandle(slot, process, parent_conn, clock))
    return handles


def _stop_workers(handles: Sequence[_WorkerHandle]) -> None:
    for handle in handles:
        if handle.alive:
            try:
                handle.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
    for handle in handles:
        handle.process.join(timeout=2.0)
        if handle.process.is_alive():
            handle.process.kill()
            handle.process.join(timeout=2.0)
        with contextlib.suppress(OSError):
            handle.conn.close()
        handle.alive = False


class WorkerSupervisor:
    """Dispatches shards to a worker pool and survives its failures.

    One :meth:`compute_step` call turns one batch into one aggregated
    gradient.  Internally it is a work-queue scheduler: shards are
    dispatched only to *idle* live workers (so the parent can never
    block on a pipe to a wedged process), results are collected with
    ``multiprocessing.connection.wait``, and four escalation rungs
    guard progress:

    1. deadline miss with a fresh heartbeat -> straggler: strike the
       worker, seeded-jitter backoff, re-dispatch the shard to an idle
       survivor (the stale result is discarded on arrival);
    2. deadline miss with a stale heartbeat, pipe EOF, or a worker
       error reply -> the worker is lost;
    3. ``worker_retries`` consecutive strikes (misses now, bench sweeps
       at later step starts) -> SIGKILL, lost;
    4. any loss -> abandon the step's partial results, degrade the
       shard count to the survivors, and re-shard the whole step --
       recorded as ``worker_lost`` / ``step_resharded`` events.

    Below ``min_workers`` live workers, :meth:`compute_step` raises
    :class:`WorkerPoolError`; the engine converts that into
    single-process fallback (or a hard abort).  Transcript lines carry
    only ``(epoch, batch, step)`` positions and schedule-driven facts,
    never wall-clock readings, so same-seed drills are bit-identical.
    """

    def __init__(
        self,
        model: MultiTaskModel,
        config: TrainConfig,
        *,
        fault_schedule: Sequence[WorkerFault] = (),
        clock=time.monotonic,
        sleep=time.sleep,
    ) -> None:
        if config.num_workers is None:
            raise ValueError("WorkerSupervisor needs config.num_workers set")
        self.model = model
        self.config = config
        self.fault_schedule = list(fault_schedule)
        self._announced_faults: set = set()
        self._rng = np.random.default_rng(
            np.random.SeedSequence([config.seed, 0x5AFE])
        )
        self._clock = clock
        self._sleep = sleep
        self.transcript: List[str] = []
        self.events: List[GuardEvent] = []
        self.stats = WorkerPoolStats()
        self.workers: List[_WorkerHandle] = []
        self.current_shards = config.effective_shards
        self.step = 0
        self._current_step = 0
        self._task_counter = 0
        self._started = False
        #: Live-worker count frozen at :meth:`stop` (``_stop_workers``
        #: marks every handle dead, so ``n_live`` is 0 afterwards).
        self.final_live = 0

    # ------------------------------------------------------------------
    @property
    def n_live(self) -> int:
        return sum(1 for h in self.workers if h.alive)

    def start(self) -> None:
        if self._started:
            return
        self.workers = _spawn_workers(
            self.model, self.config, self.config.num_workers, self._clock
        )
        self._started = True
        log_event(logger, "worker_pool_started", workers=len(self.workers))

    def stop(self) -> None:
        if not self._started:
            return
        self.final_live = self.n_live
        _stop_workers(self.workers)
        self._started = False
        log_event(logger, "worker_pool_stopped", lost=self.stats.workers_lost)

    def drain_events(self) -> List[GuardEvent]:
        """Hand the pending structured events to the engine (once)."""
        out, self.events = self.events, []
        return out

    # ------------------------------------------------------------------
    def compute_step(
        self, batch: Batch, epoch: int, batch_index: int
    ) -> StepResult:
        """One batch -> one deterministic aggregated gradient."""
        if not self._started:
            raise WorkerPoolError("worker pool is not running")
        step = self.step
        self.step += 1
        self._current_step = step
        self._sweep_stuck(epoch, batch_index)
        self._apply_faults(epoch, batch_index, step)
        while True:
            self._require_quorum(epoch, batch_index)
            shards = shard_batch(batch, self.current_shards)
            sizes = [s.size for s in shards]
            try:
                results = self._run_shards(shards, epoch, batch_index, step)
            except _StepAbandoned:
                continue
            values = [results[i][0] for i in range(len(shards))]
            grads = [results[i][1] for i in range(len(shards))]
            return StepResult(
                reduce_shard_losses(values, sizes),
                reduce_shard_grads(grads, sizes),
                len(shards),
            )

    # -- bookkeeping ----------------------------------------------------
    def _record(
        self,
        epoch: int,
        batch: int,
        reason: str,
        detail: str,
        value: float,
        action: str,
    ) -> None:
        self.transcript.append(
            f"[e{epoch:02d} b{batch:04d} s{self._current_step:05d}] "
            f"{reason} {detail}"
        )
        self.events.append(
            GuardEvent(
                epoch=epoch,
                batch=batch,
                reason=reason,
                value=float(value),
                action=action,
            )
        )

    def _require_quorum(self, epoch: int, batch: int) -> None:
        if self.n_live >= self.config.min_workers:
            return
        self._record(
            epoch,
            batch,
            "worker_quorum_lost",
            f"live={self.n_live} min={self.config.min_workers}",
            value=self.n_live,
            action="abort_pool",
        )
        raise WorkerPoolError(
            f"worker quorum lost: {self.n_live} live < "
            f"min_workers={self.config.min_workers}"
        )

    def _declare_lost(self, handle: _WorkerHandle, epoch: int, batch: int) -> None:
        if not handle.alive:
            return
        handle.alive = False
        with contextlib.suppress(ProcessLookupError, OSError):
            os.kill(handle.process.pid, signal.SIGKILL)
        handle.process.join(timeout=2.0)
        with contextlib.suppress(OSError):
            handle.conn.close()
        self.stats.workers_lost += 1
        self._record(
            epoch,
            batch,
            "worker_lost",
            f"{handle.name} live={self.n_live}",
            value=handle.slot,
            action="reshard_survivors",
        )
        self._degrade(epoch, batch)

    def _degrade(self, epoch: int, batch: int) -> None:
        new_shards = min(self.current_shards, max(self.n_live, 1))
        if new_shards == self.current_shards:
            return
        self.current_shards = new_shards
        self.stats.resharded += 1
        self._record(
            epoch,
            batch,
            "step_resharded",
            f"shards={new_shards}",
            value=new_shards,
            action="degrade_shards",
        )

    def _sweep_stuck(self, epoch: int, batch: int) -> None:
        """Step-start probation of workers still chewing an old task."""
        for handle in self.workers:
            if not handle.alive or handle.inflight == 0:
                continue
            if (
                self._clock() - handle.last_heartbeat
                > self.config.heartbeat_timeout_s
            ):
                self._declare_lost(handle, epoch, batch)
                continue
            handle.strikes += 1
            if handle.strikes > self.config.worker_retries:
                self._declare_lost(handle, epoch, batch)

    def _apply_faults(self, epoch: int, batch: int, step: int) -> None:
        for fault in self.fault_schedule:
            if fault.worker >= len(self.workers):
                continue
            handle = self.workers[fault.worker]
            if fault.kind == WORKER_KILL:
                if fault.start == step and handle.alive:
                    self._record(
                        epoch,
                        batch,
                        "worker_fault",
                        f"worker_kill {handle.name}",
                        value=fault.worker,
                        action="sigkill",
                    )
                    self.stats.faults_applied += 1
                    with contextlib.suppress(ProcessLookupError, OSError):
                        os.kill(handle.process.pid, signal.SIGKILL)
            elif fault.active(step) and id(fault) not in self._announced_faults:
                self._announced_faults.add(id(fault))
                self._record(
                    epoch,
                    batch,
                    "worker_fault",
                    f"{fault.kind} {handle.name}",
                    value=fault.worker,
                    action="inject",
                )
                self.stats.faults_applied += 1

    def _fault_payload(self, slot: int, step: int):
        """What fault, if any, rides a task dispatched to ``slot`` now."""
        for fault in self.fault_schedule:
            if fault.worker == slot and fault.active(step):
                if fault.kind == WORKER_HANG:
                    return "hang"
                if fault.kind == WORKER_SLOW:
                    return float(fault.latency_s)
        return None

    # -- the work-queue scheduler ---------------------------------------
    def _run_shards(
        self, shards: List[Batch], epoch: int, batch: int, step: int
    ) -> Dict[int, Tuple[float, List[Any]]]:
        params = [p.data for p in self.model.parameters()]
        queue: deque = deque(range(len(shards)))
        pending: Dict[int, Tuple[int, _WorkerHandle, Deadline]] = {}
        results: Dict[int, Tuple[float, List[Any]]] = {}
        stall = Deadline(self.config.worker_deadline_s, self._clock)
        while len(results) < len(shards):
            if self._dispatch_wave(
                queue, pending, shards, params, epoch, batch, step
            ):
                stall = Deadline(self.config.worker_deadline_s, self._clock)
            if pending:
                timeout = max(
                    0.0,
                    min(
                        min(d.remaining() for _, _, d in pending.values()),
                        self.config.heartbeat_timeout_s,
                    ),
                )
            else:
                # Every dispatchable worker is busy draining an
                # abandoned task; wait for stale results to free one.
                if stall.expired():
                    for handle in self.workers:
                        if handle.alive and handle.inflight:
                            self._declare_lost(handle, epoch, batch)
                    raise _StepAbandoned
                timeout = min(0.05, max(stall.remaining(), 0.0))
            if self._drain(timeout, pending, results, epoch, batch):
                stall = Deadline(self.config.worker_deadline_s, self._clock)
            self._check_deadlines(pending, queue, epoch, batch)
        return results

    def _dispatch_wave(
        self, queue, pending, shards, params, epoch, batch, step
    ) -> int:
        sent = 0
        for handle in self.workers:
            if not queue:
                break
            if not handle.alive or handle.inflight:
                continue
            shard_index = queue.popleft()
            task_id = self._task_counter
            self._task_counter += 1
            try:
                handle.conn.send(
                    (
                        "task",
                        task_id,
                        (self.config.seed, epoch, batch),
                        params,
                        shards[shard_index],
                        shard_index,
                        self._fault_payload(handle.slot, step),
                    )
                )
            except (BrokenPipeError, OSError):
                self._declare_lost(handle, epoch, batch)
                raise _StepAbandoned from None
            handle.inflight += 1
            self.stats.dispatches += 1
            pending[task_id] = (
                shard_index,
                handle,
                Deadline(self.config.worker_deadline_s, self._clock),
            )
            sent += 1
        return sent

    def _drain(self, timeout, pending, results, epoch, batch) -> bool:
        conns = {h.conn: h for h in self.workers if h.alive}
        if not conns:
            return False
        progressed = False
        for conn in connection.wait(list(conns), timeout):
            handle = conns[conn]
            try:
                while True:
                    msg = conn.recv()
                    progressed |= self._on_message(
                        handle, msg, pending, results, epoch, batch
                    )
                    if not conn.poll():
                        break
            except (EOFError, ConnectionResetError, OSError):
                self._declare_lost(handle, epoch, batch)
                raise _StepAbandoned from None
        return progressed

    def _on_message(
        self, handle, msg, pending, results, epoch, batch
    ) -> bool:
        handle.last_heartbeat = self._clock()
        kind = msg[0]
        if kind == "hb":
            return False
        if kind == "result":
            _, task_id, value, encoded = msg
            handle.inflight = max(handle.inflight - 1, 0)
            handle.strikes = 0
            if task_id in pending:
                shard_index, _, _ = pending.pop(task_id)
                results[shard_index] = (
                    value,
                    [_decode_grad(g) for g in encoded],
                )
                self.stats.results += 1
            else:
                self.stats.stale_results += 1
            return True
        if kind == "error":
            _, task_id, detail = msg
            handle.inflight = max(handle.inflight - 1, 0)
            log_event(
                logger,
                "worker_error",
                level=30,
                worker=handle.name,
                error=detail,
            )
            self._record(
                epoch,
                batch,
                "worker_error",
                f"{handle.name}",
                value=handle.slot,
                action="declare_lost",
            )
            self._declare_lost(handle, epoch, batch)
            raise _StepAbandoned
        return False

    def _check_deadlines(self, pending, queue, epoch, batch) -> None:
        for task_id in list(pending):
            shard_index, handle, deadline = pending[task_id]
            if not deadline.expired():
                continue
            if (
                self._clock() - handle.last_heartbeat
                > self.config.heartbeat_timeout_s
            ):
                # No beats either: frozen or silently dead, not slow.
                del pending[task_id]
                self._declare_lost(handle, epoch, batch)
                raise _StepAbandoned
            self.stats.deadline_misses += 1
            handle.strikes += 1
            del pending[task_id]
            self._record(
                epoch,
                batch,
                "worker_deadline_miss",
                f"{handle.name} shard={shard_index}",
                value=shard_index,
                action="redispatch",
            )
            if handle.strikes > self.config.worker_retries:
                self._declare_lost(handle, epoch, batch)
                raise _StepAbandoned
            # Seeded-jitter backoff before a survivor takes the shard;
            # the draw always happens so the RNG stream stays aligned.
            u = float(self._rng.random())
            pause = jittered_backoff(
                self.config.worker_backoff_s,
                self.config.worker_backoff_jitter,
                u,
            )
            self.stats.redispatches += 1
            self._record(
                epoch,
                batch,
                "worker_redispatch",
                f"shard={shard_index} jitter={u:.6f}",
                value=u,
                action="backoff",
            )
            if pause > 0:
                self._sleep(pause)
            queue.append(shard_index)


# ----------------------------------------------------------------------
# The sharded engine.
# ----------------------------------------------------------------------
class ParallelStateCallback(Callback):
    """Rides the sharded engine's fits: parallel state in checkpoints.

    ``checkpoint_metadata`` stores the parallel knobs and the *current*
    effective shard count, so a resumed run can tell whether it is
    venue-compatible with the snapshot.  ``on_resume`` only warns on a
    mismatch -- cross-mode resume (parallel checkpoint into a serial
    engine and back) must always work; bit-exactness is simply only
    guaranteed at a fixed shard count.
    """

    def __init__(self, engine: "ShardedTrainingEngine") -> None:
        self.engine = engine

    def checkpoint_metadata(self, ctx: TrainingContext) -> Dict[str, Any]:
        return {"parallel": self.engine.parallel_metadata()}

    def on_resume(self, ctx: TrainingContext, snapshot) -> None:
        meta = (snapshot.metadata or {}).get("parallel")
        if not isinstance(meta, dict):
            return
        before = meta.get("effective_shards")
        now = self.engine.config.effective_shards
        if before is not None and int(before) != int(now):
            log_event(
                logger,
                "resume_shard_count_changed",
                level=30,
                snapshot_shards=int(before),
                current_shards=int(now),
            )


class ShardedTrainingEngine(TrainingEngine):
    """The engine's step kernel routed through sharded gradients.

    Three modes share one code path:

    * ``num_shards`` alone -- the *serial sharded* loop: shards computed
      in-process, same reduction.  The bit-exact single-process
      reference for any equal-shard-count parallel run.
    * ``num_workers`` set -- shards dispatched to the supervised pool.
    * fallback -- after losing the worker quorum (with
      ``single_process_fallback``) the fit continues through the serial
      sharded loop at the degraded shard count, mid-epoch, on the same
      optimizer state.

    Everything else -- callbacks, checkpoint/resume, streaming sources,
    validation, guards -- is inherited unchanged from
    :class:`TrainingEngine`; the override surface is exactly the step
    kernel seams (``_enter_fit`` / ``_forward`` / ``_backward``).
    """

    def __init__(
        self,
        model: MultiTaskModel,
        config: TrainConfig,
        optimizer: Optional[Optimizer] = None,
        callbacks: Sequence[Callback] = (),
        fault_schedule: Sequence[WorkerFault] = (),
    ) -> None:
        super().__init__(model, config, optimizer=optimizer, callbacks=callbacks)
        if not config.parallel_enabled:
            raise ValueError(
                "ShardedTrainingEngine needs num_workers or num_shards > 1 "
                "set; use TrainingEngine (or create_engine) otherwise"
            )
        self.fault_schedule = list(fault_schedule)
        self.supervisor: Optional[WorkerSupervisor] = None
        self._fallback = False
        self._pending_grads: Optional[List[Any]] = None
        self._current_shards = config.effective_shards
        self._module_rngs: List[np.random.Generator] = []

    # ------------------------------------------------------------------
    @property
    def fell_back(self) -> bool:
        """Whether this fit abandoned the pool for in-process training."""
        return self._fallback

    @property
    def transcript(self) -> List[str]:
        """The supervisor's deterministic event transcript (or empty)."""
        return self.supervisor.transcript if self.supervisor is not None else []

    def parallel_metadata(self) -> Dict[str, Any]:
        """JSON-able parallel state stored in checkpoint metadata."""
        return {
            "num_workers": self.config.num_workers,
            "num_shards": self.config.num_shards,
            "effective_shards": int(self._current_shards),
            "fell_back": bool(self._fallback),
            "min_workers": int(self.config.min_workers),
            "worker_deadline_s": float(self.config.worker_deadline_s),
            "heartbeat_timeout_s": float(self.config.heartbeat_timeout_s),
        }

    # ------------------------------------------------------------------
    def fit(self, train, validation=None, resume_from=None, callbacks=None):
        resolved = list(self.callbacks if callbacks is None else callbacks)
        resolved.append(ParallelStateCallback(self))
        return super().fit(
            train,
            validation=validation,
            resume_from=resume_from,
            callbacks=resolved,
        )

    # -- step kernel overrides ------------------------------------------
    def _enter_fit(self, ctx: TrainingContext, stack) -> None:
        self._module_rngs = collect_module_rngs(self.model)
        self._fallback = False
        self._pending_grads = None
        self._current_shards = self.config.effective_shards
        if self.config.num_workers is not None:
            self.supervisor = WorkerSupervisor(
                self.model, self.config, fault_schedule=self.fault_schedule
            )
            self.supervisor.start()
            # Teardown rides the fit's ExitStack: the pool dies with the
            # loop, including when a callback or the kernel raises.
            stack.callback(self.supervisor.stop)

    def _forward(self, ctx: TrainingContext, runner) -> None:
        if self.supervisor is not None and not self._fallback:
            try:
                result = self.supervisor.compute_step(
                    ctx.batch, ctx.epoch, ctx.batch_index
                )
            except WorkerPoolError:
                self._current_shards = self.supervisor.current_shards
                if not self.config.single_process_fallback:
                    ctx.history.events.extend(self.supervisor.drain_events())
                    raise
                self.supervisor._record(
                    ctx.epoch,
                    ctx.batch_index,
                    "single_process_fallback",
                    f"shards={self._current_shards}",
                    value=self._current_shards,
                    action="serial_engine",
                )
                ctx.history.events.extend(self.supervisor.drain_events())
                self.supervisor.stop()
                self._fallback = True
                log_event(
                    logger,
                    "single_process_fallback",
                    shards=self._current_shards,
                )
            else:
                self._current_shards = self.supervisor.current_shards
                ctx.history.events.extend(self.supervisor.drain_events())
                ctx.loss_value = result.loss_value
                self._pending_grads = result.grads
                return None
        value, grads = self._serial_step(ctx)
        ctx.loss_value = value
        self._pending_grads = grads
        return None

    def _serial_step(self, ctx: TrainingContext) -> Tuple[float, List[Any]]:
        """The in-process sharded step: the pool's bit-exact reference."""
        shards = shard_batch(ctx.batch, self._current_shards)
        sizes = [shard.size for shard in shards]
        values: List[float] = []
        grads: List[List[Any]] = []
        for shard_index, shard in enumerate(shards):
            value, shard_grads = compute_shard_gradients(
                self.model,
                shard,
                self._module_rngs,
                seed=self.config.seed,
                epoch=ctx.epoch,
                batch_index=ctx.batch_index,
                shard_index=shard_index,
            )
            values.append(value)
            grads.append(shard_grads)
        return (
            reduce_shard_losses(values, sizes),
            reduce_shard_grads(grads, sizes),
        )

    def _backward(self, ctx: TrainingContext, runner, loss) -> None:
        self.optimizer.zero_grad()
        for param, grad in zip(self.model.parameters(), self._pending_grads):
            param.grad = grad
        self._pending_grads = None


# ----------------------------------------------------------------------
# The strawman and the drill.
# ----------------------------------------------------------------------
class UnsupervisedWorkerPool:
    """Same workers, no supervision: the control arm of the chaos drill.

    Dispatches shard ``i`` to worker ``i`` with blocking sends and
    blocking per-worker collects -- no heartbeat interpretation, no
    deadlines, no re-dispatch, no degradation.  On the fault schedules
    the supervised pool shrugs off, this pool aborts (SIGKILL -> pipe
    EOF -> :class:`WorkerPoolError`) or stalls forever on a hang.  The
    optional ``watchdog_s`` exists only so tests observe the deadlock
    as a raised :class:`WorkerPoolError` instead of hanging CI; a real
    unsupervised trainer has no such rescue.
    """

    def __init__(
        self,
        model: MultiTaskModel,
        config: TrainConfig,
        *,
        fault_schedule: Sequence[WorkerFault] = (),
        watchdog_s: Optional[float] = None,
    ) -> None:
        if config.num_workers is None:
            raise ValueError("UnsupervisedWorkerPool needs config.num_workers")
        self.model = model
        self.config = config
        self.fault_schedule = list(fault_schedule)
        self.watchdog_s = watchdog_s
        self.workers: List[_WorkerHandle] = []
        self.step = 0
        self._started = False

    def start(self) -> None:
        if self._started:
            return
        self.workers = _spawn_workers(
            self.model, self.config, self.config.num_workers, time.monotonic
        )
        self._started = True

    def stop(self) -> None:
        if not self._started:
            return
        _stop_workers(self.workers)
        self._started = False

    def _fault_payload(self, slot: int, step: int):
        for fault in self.fault_schedule:
            if fault.worker == slot and fault.active(step):
                if fault.kind == WORKER_HANG:
                    return "hang"
                if fault.kind == WORKER_SLOW:
                    return float(fault.latency_s)
        return None

    def compute_step(
        self, batch: Batch, epoch: int, batch_index: int
    ) -> StepResult:
        if not self._started:
            raise WorkerPoolError("worker pool is not running")
        step = self.step
        self.step += 1
        for fault in self.fault_schedule:
            if (
                fault.kind == WORKER_KILL
                and fault.start == step
                and fault.worker < len(self.workers)
            ):
                handle = self.workers[fault.worker]
                with contextlib.suppress(ProcessLookupError, OSError):
                    os.kill(handle.process.pid, signal.SIGKILL)
        shards = shard_batch(batch, len(self.workers))
        sizes = [shard.size for shard in shards]
        params = [p.data for p in self.model.parameters()]
        for shard_index, shard in enumerate(shards):
            handle = self.workers[shard_index]
            try:
                handle.conn.send(
                    (
                        "task",
                        shard_index,
                        (self.config.seed, epoch, batch_index),
                        params,
                        shard,
                        shard_index,
                        self._fault_payload(handle.slot, step),
                    )
                )
            except (BrokenPipeError, OSError) as exc:
                raise WorkerPoolError(
                    f"{handle.name} died; the unsupervised pool has no "
                    "survivor re-dispatch and cannot recover"
                ) from exc
        results: Dict[int, Tuple[float, List[Any]]] = {}
        watchdog = (
            Deadline(self.watchdog_s, time.monotonic)
            if self.watchdog_s is not None
            else None
        )
        for shard_index in range(len(shards)):
            handle = self.workers[shard_index]
            while shard_index not in results:
                if watchdog is not None and watchdog.expired():
                    raise WorkerPoolError(
                        f"unsupervised pool stalled on {handle.name}; "
                        "without the test watchdog this blocks forever"
                    )
                try:
                    if not handle.conn.poll(0.05):
                        continue
                    msg = handle.conn.recv()
                except (EOFError, ConnectionResetError, OSError) as exc:
                    raise WorkerPoolError(
                        f"{handle.name} died mid-shard; partial step lost"
                    ) from exc
                if msg[0] == "hb":
                    continue
                if msg[0] == "error":
                    raise WorkerPoolError(f"{handle.name} failed: {msg[2]}")
                _, task_id, value, encoded = msg
                results[task_id] = (
                    value,
                    [_decode_grad(g) for g in encoded],
                )
        values = [results[i][0] for i in range(len(shards))]
        grads = [results[i][1] for i in range(len(shards))]
        return StepResult(
            reduce_shard_losses(values, sizes),
            reduce_shard_grads(grads, sizes),
            len(shards),
        )


@dataclass
class TrainerDrillReport:
    """Everything a chaos drill run produced, for assertions and docs."""

    transcript: List[str]
    fault_schedule: List[WorkerFault]
    history: TrainingHistory
    model: MultiTaskModel
    stats: WorkerPoolStats
    n_workers_start: int
    n_workers_end: int
    fell_back: bool

    def summary(self) -> Dict[str, Any]:
        return {
            "faults": [
                {"kind": f.kind, "worker": f.worker, "start": f.start}
                for f in self.fault_schedule
            ],
            "workers": f"{self.n_workers_end}/{self.n_workers_start} live",
            "workers_lost": self.stats.workers_lost,
            "resharded": self.stats.resharded,
            "redispatches": self.stats.redispatches,
            "fell_back": self.fell_back,
            "epochs_run": self.history.n_epochs_run,
            "final_loss": (
                self.history.epoch_losses[-1]
                if self.history.epoch_losses
                else None
            ),
            "transcript_lines": len(self.transcript),
        }


class TrainerChaosDrill:
    """Seeded kill/hang/slow faults against a supervised training run.

    The trainer-side sibling of the serving fleet's chaos drill: build
    a deterministic :class:`WorkerFault` schedule (or accept one),
    train a fresh model through :class:`ShardedTrainingEngine` with the
    faults armed, and report the transcript, stats and history.  Same
    seed, same data, same config -> bit-identical transcript and final
    parameters, which is what the acceptance tests pin.
    """

    def __init__(
        self,
        model_factory,
        train,
        config: TrainConfig,
        *,
        spec: Optional[TrainerFaultSpec] = None,
        schedule: Optional[Sequence[WorkerFault]] = None,
        validation=None,
        seed: int = 0,
    ) -> None:
        if config.num_workers is None:
            raise ValueError("TrainerChaosDrill needs config.num_workers set")
        self.model_factory = model_factory
        self.train = train
        self.config = config
        self.validation = validation
        self.seed = seed
        if schedule is not None:
            self.schedule = list(schedule)
        else:
            n_steps = config.epochs * as_source(train).n_batches_per_epoch(
                config.batch_size, config.drop_last
            )
            self.schedule = build_trainer_fault_schedule(
                spec or TrainerFaultSpec(),
                config.num_workers,
                n_steps,
                seed=seed,
            )

    def run(self) -> TrainerDrillReport:
        model = self.model_factory()
        engine = ShardedTrainingEngine(
            model, self.config, fault_schedule=self.schedule
        )
        callbacks: List[Callback] = []
        if self.validation is not None:
            from repro.training.callbacks.validation import ValidationCallback

            callbacks.append(
                ValidationCallback(self.config.early_stopping_patience)
            )
        history = engine.fit(
            self.train, validation=self.validation, callbacks=callbacks
        )
        supervisor = engine.supervisor
        return TrainerDrillReport(
            transcript=list(supervisor.transcript),
            fault_schedule=list(self.schedule),
            history=history,
            model=model,
            stats=supervisor.stats,
            n_workers_start=self.config.num_workers,
            n_workers_end=supervisor.final_live,
            fell_back=engine.fell_back,
        )
