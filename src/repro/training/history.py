"""The per-run training record.

:class:`TrainingHistory` is the single artifact every training entry
point returns -- the monolithic ``Trainer`` facade, the composable
:class:`~repro.training.engine.TrainingEngine`, and the checkpoint
subsystem all read and write the same structure.  ``to_dict`` /
``from_dict`` are exact inverses (including guard ``events`` and the
``op_profile``), so snapshots and experiment reports round-trip the
history without hand-parsing dictionaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.reliability.guards import GuardEvent


@dataclass
class TrainingHistory:
    """Per-epoch training record (plus any guard interventions)."""

    epoch_losses: List[float] = field(default_factory=list)
    validation_cvr_auc: List[float] = field(default_factory=list)
    stopped_early: bool = False
    #: Guard interventions and structured warnings, in occurrence order.
    events: List[GuardEvent] = field(default_factory=list)
    #: Op-level profile of the fit loop (``OpProfiler.summary()``)
    #: recorded when ``TrainConfig.profile_ops`` is set.
    op_profile: Optional[Dict[str, Any]] = None

    @property
    def n_epochs_run(self) -> int:
        return len(self.epoch_losses)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "epoch_losses": list(self.epoch_losses),
            "validation_cvr_auc": list(self.validation_cvr_auc),
            "stopped_early": self.stopped_early,
            "events": [event.to_dict() for event in self.events],
            "op_profile": self.op_profile,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TrainingHistory":
        return cls(
            epoch_losses=list(data.get("epoch_losses", [])),
            validation_cvr_auc=list(data.get("validation_cvr_auc", [])),
            stopped_early=bool(data.get("stopped_early", False)),
            events=[GuardEvent.from_dict(e) for e in data.get("events", [])],
            op_profile=data.get("op_profile"),
        )
