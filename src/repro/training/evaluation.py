"""Offline evaluation: the metrics behind Table IV and Fig. 7.

``evaluate_model`` computes, on a held-out exposure log:

* **cvr_auc_d** -- CVR AUC over the entire space ``D`` using the oracle
  potential-outcome labels ``r(do(o=1))``.  This is the paper's actual
  object of interest (inference happens over ``D``); the synthetic
  oracle lets us measure it exactly.
* **cvr_auc_o** -- CVR AUC restricted to clicked test samples with
  observed labels (the only option on real logs).
* **ctcvr_auc** -- click&conversion AUC over ``D`` (observed labels).
* **ctr_auc** -- click AUC over ``D``.
* **cvr_gauc** -- user-grouped CVR AUC over ``D`` (observed labels),
  the within-user ranking quality that online serving actually uses.
* **avg_cvr_prediction** vs the posterior CVR over ``D``/``O``/``N``
  (the Fig. 7 quantities).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.data.dataset import InteractionDataset
from repro.data.stream import DataSource
from repro.metrics.classification import log_loss
from repro.metrics.ranking import auc, grouped_auc
from repro.models.base import MultiTaskModel, Predictions


@dataclass(frozen=True)
class EvaluationResult:
    """All offline metrics for one (model, dataset) pair."""

    model_name: str
    dataset_name: str
    ctr_auc: float
    cvr_auc_d: Optional[float]
    cvr_auc_o: Optional[float]
    ctcvr_auc: Optional[float]
    cvr_gauc: Optional[float]
    cvr_log_loss_d: Optional[float]
    avg_cvr_prediction: float
    posterior_cvr_d: Optional[float]
    posterior_cvr_o: Optional[float]
    posterior_cvr_n: Optional[float]

    @property
    def cvr_prediction_gap(self) -> Optional[float]:
        """|mean prediction - posterior CVR over D| (Fig. 7 diagnostic)."""
        if self.posterior_cvr_d is None:
            return None
        return abs(self.avg_cvr_prediction - self.posterior_cvr_d)


def _safe_auc(labels: np.ndarray, scores: np.ndarray) -> Optional[float]:
    """AUC, or None when the labels are degenerate (sparse data)."""
    try:
        return auc(labels, scores)
    except ValueError:
        return None


def evaluate_model(
    model: MultiTaskModel,
    dataset: InteractionDataset,
    predictions: Optional[Predictions] = None,
) -> EvaluationResult:
    """Compute the full offline metric set on ``dataset``.

    ``predictions`` may be passed in to avoid recomputing a forward
    pass (the experiment harness reuses predictions across metrics).
    """
    preds = predictions if predictions is not None else model.predict(dataset.full_batch())
    clicked = dataset.clicks == 1

    ctr_auc = _safe_auc(dataset.clicks, preds.ctr)
    ctcvr_auc = _safe_auc(dataset.conversions, preds.ctcvr)
    cvr_auc_o = (
        _safe_auc(dataset.conversions[clicked], preds.cvr[clicked])
        if clicked.any()
        else None
    )
    users = dataset.sparse.get("user_id")
    cvr_gauc = (
        grouped_auc(dataset.conversions, preds.cvr, users)
        if users is not None
        else None
    )

    if dataset.has_oracle:
        cvr_auc_d = _safe_auc(dataset.oracle_conversion, preds.cvr)
        cvr_log_loss_d = log_loss(dataset.oracle_conversion, preds.cvr)
        posterior_d = float(dataset.oracle_cvr.mean())
        posterior_o = (
            float(dataset.oracle_cvr[clicked].mean()) if clicked.any() else None
        )
        posterior_n = (
            float(dataset.oracle_cvr[~clicked].mean()) if (~clicked).any() else None
        )
    else:
        cvr_auc_d = None
        cvr_log_loss_d = None
        posterior_d = posterior_o = posterior_n = None

    return EvaluationResult(
        model_name=model.model_name,
        dataset_name=dataset.name,
        ctr_auc=ctr_auc if ctr_auc is not None else float("nan"),
        cvr_auc_d=cvr_auc_d,
        cvr_auc_o=cvr_auc_o,
        ctcvr_auc=ctcvr_auc,
        cvr_gauc=cvr_gauc,
        cvr_log_loss_d=cvr_log_loss_d,
        avg_cvr_prediction=float(preds.cvr.mean()),
        posterior_cvr_d=posterior_d,
        posterior_cvr_o=posterior_o,
        posterior_cvr_n=posterior_n,
    )


# ----------------------------------------------------------------------
# Streaming metric accumulators
# ----------------------------------------------------------------------
# Out-of-core evaluation cannot hold every (label, score) pair, so these
# accumulators fold batches into O(bins) state:
#
# * AUC via fixed-bin score histograms with the midrank formula --
#   exact up to score quantisation (1/bins), mergeable across shards;
# * NLL and means as running sums -- exact up to fp summation order;
# * ECE with *the same* bin assignment as
#   :func:`repro.metrics.classification.expected_calibration_error`, so
#   the streamed value matches the batch value on identical data.


class StreamingMean:
    """Running mean of a (possibly masked) quantity."""

    def __init__(self) -> None:
        self._sum = 0.0
        self._count = 0

    def update(self, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=float)
        self._sum += float(values.sum())
        self._count += values.size

    @property
    def count(self) -> int:
        return self._count

    def result(self) -> Optional[float]:
        if self._count == 0:
            return None
        return self._sum / self._count


class StreamingLogLoss:
    """Running-sum binary log loss (same clipping as :func:`log_loss`)."""

    _EPS = 1e-12

    def __init__(self) -> None:
        self._sum = 0.0
        self._count = 0

    def update(self, labels: np.ndarray, probs: np.ndarray) -> None:
        y = np.asarray(labels, dtype=float)
        p = np.clip(np.asarray(probs, dtype=float), self._EPS, 1.0 - self._EPS)
        if y.shape != p.shape:
            raise ValueError(f"shape mismatch: {y.shape} vs {p.shape}")
        self._sum += float(-(y * np.log(p) + (1 - y) * np.log(1 - p)).sum())
        self._count += y.size

    def result(self) -> Optional[float]:
        if self._count == 0:
            return None
        return self._sum / self._count


class StreamingAUC:
    """Histogram AUC: positives/negatives binned on score in [0, 1].

    With ties broken by midrank inside each bin, this equals the exact
    AUC up to the score quantisation ``1/bins`` (4096 bins put the
    error well below reproduction noise).  Accumulators over disjoint
    shards merge by adding histograms.
    """

    def __init__(self, bins: int = 4096) -> None:
        if bins < 2:
            raise ValueError(f"bins must be >= 2, got {bins}")
        self.bins = bins
        self._pos = np.zeros(bins, dtype=np.int64)
        self._neg = np.zeros(bins, dtype=np.int64)

    def update(self, labels: np.ndarray, scores: np.ndarray) -> None:
        y = np.asarray(labels).astype(bool)
        s = np.clip(np.asarray(scores, dtype=float), 0.0, 1.0)
        if y.shape != s.shape:
            raise ValueError(f"shape mismatch: {y.shape} vs {s.shape}")
        idx = np.minimum((s * self.bins).astype(np.int64), self.bins - 1)
        self._pos += np.bincount(idx[y], minlength=self.bins)
        self._neg += np.bincount(idx[~y], minlength=self.bins)

    def merge(self, other: "StreamingAUC") -> "StreamingAUC":
        if other.bins != self.bins:
            raise ValueError(
                f"cannot merge StreamingAUC with {other.bins} bins into "
                f"{self.bins} bins"
            )
        self._pos += other._pos
        self._neg += other._neg
        return self

    def result(self) -> Optional[float]:
        n_pos = int(self._pos.sum())
        n_neg = int(self._neg.sum())
        if n_pos == 0 or n_neg == 0:
            return None
        neg_below = np.concatenate(([0], np.cumsum(self._neg)[:-1]))
        wins = self._pos * (neg_below + self._neg / 2.0)
        return float(wins.sum() / (n_pos * n_neg))


class StreamingECE:
    """Streamed expected calibration error.

    Uses the identical bin assignment as
    :func:`~repro.metrics.classification.expected_calibration_error`
    (``digitize`` on uniform edges), so on the same data the streamed
    value agrees with the batch value to fp-summation precision.
    """

    def __init__(self, bins: int = 10) -> None:
        if bins < 1:
            raise ValueError(f"bins must be >= 1, got {bins}")
        self.bins = bins
        self._edges = np.linspace(0.0, 1.0, bins + 1)
        self._p_sum = np.zeros(bins)
        self._y_sum = np.zeros(bins)
        self._count = np.zeros(bins, dtype=np.int64)

    def update(self, labels: np.ndarray, probs: np.ndarray) -> None:
        y = np.asarray(labels, dtype=float)
        p = np.asarray(probs, dtype=float)
        if y.shape != p.shape:
            raise ValueError(f"shape mismatch: {y.shape} vs {p.shape}")
        idx = np.clip(np.digitize(p, self._edges[1:-1]), 0, self.bins - 1)
        self._p_sum += np.bincount(idx, weights=p, minlength=self.bins)
        self._y_sum += np.bincount(idx, weights=y, minlength=self.bins)
        self._count += np.bincount(idx, minlength=self.bins)

    def result(self) -> Optional[float]:
        total = int(self._count.sum())
        if total == 0:
            return None
        ece = 0.0
        for b in range(self.bins):
            if self._count[b] == 0:
                continue
            gap = abs(
                self._p_sum[b] / self._count[b] - self._y_sum[b] / self._count[b]
            )
            ece += (self._count[b] / total) * gap
        return float(ece)


@dataclass(frozen=True)
class StreamingEvaluationResult:
    """Observed-label metrics over one pass of a :class:`DataSource`.

    Streaming sources carry no oracle columns, so the entire-space (do)
    metrics of :class:`EvaluationResult` are unavailable here -- this
    is exactly the real-log situation the paper describes.
    """

    model_name: str
    source_name: str
    n_rows: int
    ctr_auc: Optional[float]
    ctcvr_auc: Optional[float]
    cvr_auc_o: Optional[float]
    cvr_log_loss_o: Optional[float]
    cvr_ece_o: Optional[float]
    avg_cvr_prediction: Optional[float]


def evaluate_model_streaming(
    model: MultiTaskModel,
    source: DataSource,
    batch_size: int = 4096,
    auc_bins: int = 4096,
    ece_bins: int = 10,
) -> StreamingEvaluationResult:
    """One bounded-memory pass over ``source`` computing observed-label
    metrics with the streaming accumulators above."""
    ctr_auc = StreamingAUC(auc_bins)
    ctcvr_auc = StreamingAUC(auc_bins)
    cvr_auc_o = StreamingAUC(auc_bins)
    cvr_nll_o = StreamingLogLoss()
    cvr_ece_o = StreamingECE(ece_bins)
    cvr_mean = StreamingMean()
    n_rows = 0
    for batch in source.iter_batches(batch_size, shuffle=False):
        preds = model.predict(batch)
        n_rows += batch.size
        ctr_auc.update(batch.clicks, preds.ctr)
        ctcvr_auc.update(batch.conversions, preds.ctcvr)
        cvr_mean.update(preds.cvr)
        clicked = batch.clicks == 1
        if clicked.any():
            cvr_auc_o.update(batch.conversions[clicked], preds.cvr[clicked])
            cvr_nll_o.update(batch.conversions[clicked], preds.cvr[clicked])
            cvr_ece_o.update(batch.conversions[clicked], preds.cvr[clicked])
    return StreamingEvaluationResult(
        model_name=model.model_name,
        source_name=source.name,
        n_rows=n_rows,
        ctr_auc=ctr_auc.result(),
        ctcvr_auc=ctcvr_auc.result(),
        cvr_auc_o=cvr_auc_o.result(),
        cvr_log_loss_o=cvr_nll_o.result(),
        cvr_ece_o=cvr_ece_o.result(),
        avg_cvr_prediction=cvr_mean.result(),
    )
