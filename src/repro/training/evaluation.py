"""Offline evaluation: the metrics behind Table IV and Fig. 7.

``evaluate_model`` computes, on a held-out exposure log:

* **cvr_auc_d** -- CVR AUC over the entire space ``D`` using the oracle
  potential-outcome labels ``r(do(o=1))``.  This is the paper's actual
  object of interest (inference happens over ``D``); the synthetic
  oracle lets us measure it exactly.
* **cvr_auc_o** -- CVR AUC restricted to clicked test samples with
  observed labels (the only option on real logs).
* **ctcvr_auc** -- click&conversion AUC over ``D`` (observed labels).
* **ctr_auc** -- click AUC over ``D``.
* **cvr_gauc** -- user-grouped CVR AUC over ``D`` (observed labels),
  the within-user ranking quality that online serving actually uses.
* **avg_cvr_prediction** vs the posterior CVR over ``D``/``O``/``N``
  (the Fig. 7 quantities).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.data.dataset import InteractionDataset
from repro.metrics.classification import log_loss
from repro.metrics.ranking import auc, grouped_auc
from repro.models.base import MultiTaskModel, Predictions


@dataclass(frozen=True)
class EvaluationResult:
    """All offline metrics for one (model, dataset) pair."""

    model_name: str
    dataset_name: str
    ctr_auc: float
    cvr_auc_d: Optional[float]
    cvr_auc_o: Optional[float]
    ctcvr_auc: Optional[float]
    cvr_gauc: Optional[float]
    cvr_log_loss_d: Optional[float]
    avg_cvr_prediction: float
    posterior_cvr_d: Optional[float]
    posterior_cvr_o: Optional[float]
    posterior_cvr_n: Optional[float]

    @property
    def cvr_prediction_gap(self) -> Optional[float]:
        """|mean prediction - posterior CVR over D| (Fig. 7 diagnostic)."""
        if self.posterior_cvr_d is None:
            return None
        return abs(self.avg_cvr_prediction - self.posterior_cvr_d)


def _safe_auc(labels: np.ndarray, scores: np.ndarray) -> Optional[float]:
    """AUC, or None when the labels are degenerate (sparse data)."""
    try:
        return auc(labels, scores)
    except ValueError:
        return None


def evaluate_model(
    model: MultiTaskModel,
    dataset: InteractionDataset,
    predictions: Optional[Predictions] = None,
) -> EvaluationResult:
    """Compute the full offline metric set on ``dataset``.

    ``predictions`` may be passed in to avoid recomputing a forward
    pass (the experiment harness reuses predictions across metrics).
    """
    preds = predictions if predictions is not None else model.predict(dataset.full_batch())
    clicked = dataset.clicks == 1

    ctr_auc = _safe_auc(dataset.clicks, preds.ctr)
    ctcvr_auc = _safe_auc(dataset.conversions, preds.ctcvr)
    cvr_auc_o = (
        _safe_auc(dataset.conversions[clicked], preds.cvr[clicked])
        if clicked.any()
        else None
    )
    users = dataset.sparse.get("user_id")
    cvr_gauc = (
        grouped_auc(dataset.conversions, preds.cvr, users)
        if users is not None
        else None
    )

    if dataset.has_oracle:
        cvr_auc_d = _safe_auc(dataset.oracle_conversion, preds.cvr)
        cvr_log_loss_d = log_loss(dataset.oracle_conversion, preds.cvr)
        posterior_d = float(dataset.oracle_cvr.mean())
        posterior_o = (
            float(dataset.oracle_cvr[clicked].mean()) if clicked.any() else None
        )
        posterior_n = (
            float(dataset.oracle_cvr[~clicked].mean()) if (~clicked).any() else None
        )
    else:
        cvr_auc_d = None
        cvr_log_loss_d = None
        posterior_d = posterior_o = posterior_n = None

    return EvaluationResult(
        model_name=model.model_name,
        dataset_name=dataset.name,
        ctr_auc=ctr_auc if ctr_auc is not None else float("nan"),
        cvr_auc_d=cvr_auc_d,
        cvr_auc_o=cvr_auc_o,
        ctcvr_auc=ctcvr_auc,
        cvr_gauc=cvr_gauc,
        cvr_log_loss_d=cvr_log_loss_d,
        avg_cvr_prediction=float(preds.cvr.mean()),
        posterior_cvr_d=posterior_d,
        posterior_cvr_o=posterior_o,
        posterior_cvr_n=posterior_n,
    )
