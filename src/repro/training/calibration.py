"""Post-hoc probability calibration for CVR outputs.

Production CVR estimates feed bidding/blending formulas, so their
*values* matter, not just their ranking (this is the practical weight
behind the paper's Fig. 7 analysis).  Two standard calibrators:

* :class:`PlattScaler` -- logistic regression on the logit of the raw
  prediction (two scalars, robust on small validation sets);
* :class:`IsotonicCalibrator` -- monotone step function via the
  pool-adjacent-violators algorithm (non-parametric; needs more data).

Both are fit on a validation set and then applied to test predictions.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

_EPS = 1e-7


def _logit(p: np.ndarray) -> np.ndarray:
    q = np.clip(p, _EPS, 1.0 - _EPS)
    return np.log(q / (1.0 - q))


def _sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x, dtype=float)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    e = np.exp(x[~pos])
    out[~pos] = e / (1.0 + e)
    return out


class PlattScaler:
    """``calibrated = sigmoid(a * logit(raw) + b)``.

    Fit by Newton steps on the log-loss (a 2-parameter logistic
    regression; converges in a handful of iterations).
    """

    def __init__(self) -> None:
        self.a: float = 1.0
        self.b: float = 0.0
        self._fitted = False

    def fit(
        self, predictions: np.ndarray, labels: np.ndarray, n_iter: int = 50
    ) -> "PlattScaler":
        p = np.asarray(predictions, dtype=float)
        y = np.asarray(labels, dtype=float)
        if p.shape != y.shape:
            raise ValueError(f"shape mismatch: {p.shape} vs {y.shape}")
        if p.size < 2 or y.min() == y.max():
            raise ValueError("calibration needs both classes present")
        x = _logit(p)
        a, b = 1.0, 0.0
        for _ in range(n_iter):
            z = _sigmoid(a * x + b)
            grad_a = float(((z - y) * x).mean())
            grad_b = float((z - y).mean())
            w = z * (1.0 - z) + 1e-9
            h_aa = float((w * x * x).mean())
            h_ab = float((w * x).mean())
            h_bb = float(w.mean())
            det = h_aa * h_bb - h_ab**2
            if abs(det) < 1e-12:
                break
            step_a = (h_bb * grad_a - h_ab * grad_b) / det
            step_b = (h_aa * grad_b - h_ab * grad_a) / det
            a -= step_a
            b -= step_b
            if max(abs(step_a), abs(step_b)) < 1e-10:
                break
        self.a, self.b = a, b
        self._fitted = True
        return self

    def transform(self, predictions: np.ndarray) -> np.ndarray:
        if not self._fitted:
            raise RuntimeError("fit() must be called before transform()")
        return _sigmoid(self.a * _logit(np.asarray(predictions, dtype=float)) + self.b)


class IsotonicCalibrator:
    """Monotone calibration via pool-adjacent-violators (PAV).

    Produces a piecewise-constant non-decreasing map from raw scores to
    empirical rates; queries interpolate between block values.
    """

    def __init__(self) -> None:
        self._x: Optional[np.ndarray] = None
        self._y: Optional[np.ndarray] = None

    def fit(self, predictions: np.ndarray, labels: np.ndarray) -> "IsotonicCalibrator":
        p = np.asarray(predictions, dtype=float)
        y = np.asarray(labels, dtype=float)
        if p.shape != y.shape:
            raise ValueError(f"shape mismatch: {p.shape} vs {y.shape}")
        if p.size < 2:
            raise ValueError("calibration needs at least two points")
        order = np.argsort(p, kind="stable")
        xs = p[order]
        ys = y[order].astype(float)
        weights = np.ones_like(ys)
        # Pool adjacent violators.
        values = list(ys)
        wts = list(weights)
        starts = list(range(len(ys)))
        i = 0
        while i < len(values) - 1:
            if values[i] > values[i + 1] + 1e-15:
                merged = (values[i] * wts[i] + values[i + 1] * wts[i + 1]) / (
                    wts[i] + wts[i + 1]
                )
                wts[i] += wts[i + 1]
                values[i] = merged
                del values[i + 1], wts[i + 1], starts[i + 1]
                if i > 0:
                    i -= 1
            else:
                i += 1
        block_x = []
        for j, start in enumerate(starts):
            end = starts[j + 1] if j + 1 < len(starts) else len(xs)
            block_x.append(float(xs[start:end].mean()))
        self._x = np.asarray(block_x)
        self._y = np.asarray(values)
        return self

    def transform(self, predictions: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("fit() must be called before transform()")
        p = np.asarray(predictions, dtype=float)
        return np.interp(p, self._x, self._y)
