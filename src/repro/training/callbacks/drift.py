"""Capture a serving drift reference at the end of training.

The drift sentinels (:mod:`repro.reliability.drift`) compare live
serving distributions against a *frozen training reference* -- this
callback is where that reference freezes.  On normal fit completion it
samples the training split, runs the freshly trained model over the
sample, and snapshots the dense-feature, ``o_hat`` (propensity), and
predicted-CVR histograms.  The result is available in-process as
``callback.reference`` and, when ``path`` is given, persisted as JSON
next to the run's other artifacts so a serving process can load it
without the training data.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Optional

from repro.reliability.drift import DriftReference
from repro.training.callbacks.base import Callback, TrainingContext
from repro.utils.logging import get_logger, log_event

logger = get_logger("training.callbacks.drift")


class DriftReferenceCallback(Callback):
    """Freeze the training-time distributions when ``fit`` completes.

    Parameters
    ----------
    sample:
        Training rows sampled for the snapshot (the whole split when
        smaller).
    bins:
        Histogram bins per monitored quantity.
    seed:
        Sampling seed -- the snapshot is deterministic given the model
        and data.
    path:
        Optional JSON destination (written via
        :meth:`~repro.reliability.drift.DriftReference.save`).
    """

    def __init__(
        self,
        sample: int = 2048,
        bins: int = 10,
        seed: int = 0,
        path: "Path | str | None" = None,
    ) -> None:
        if sample < 1:
            raise ValueError(f"sample must be >= 1, got {sample}")
        if bins < 2:
            raise ValueError(f"bins must be >= 2, got {bins}")
        self.sample = sample
        self.bins = bins
        self.seed = seed
        self.path = None if path is None else Path(path)
        self.reference: Optional[DriftReference] = None

    def on_fit_end(self, ctx: TrainingContext) -> None:
        from repro.data.dataset import InteractionDataset

        if not isinstance(ctx.train, InteractionDataset):
            # Streaming sources have no random-access rows to sample;
            # capture a reference from a materialised split instead.
            log_event(
                logger,
                "drift_reference_skipped",
                reason="streaming_source",
                source=getattr(ctx.train, "name", type(ctx.train).__name__),
            )
            return
        self.reference = DriftReference.capture(
            ctx.model,
            ctx.train,
            sample=self.sample,
            bins=self.bins,
            seed=self.seed,
        )
        if self.path is not None:
            self.reference.save(self.path)
        log_event(
            logger,
            "drift_reference_captured",
            sample=min(self.sample, len(ctx.train)),
            bins=self.bins,
            path=str(self.path) if self.path is not None else "<memory>",
        )

    def checkpoint_metadata(self, ctx: TrainingContext) -> Dict[str, Any]:
        if self.path is None:
            return {}
        return {"drift_reference_path": str(self.path)}
