"""Learning-rate scheduling callback.

Wraps any :class:`~repro.optim.schedulers.Scheduler` and advances it
once per epoch (default) or once per clean batch.  Composes with the
loss guard: the scheduled rate is multiplied by ``ctx.lr_scale`` -- the
cumulative decay factor accumulated by guard trips -- so a guard
halving is not silently undone by the next scheduler step.

The factory form (``LRSchedulerCallback(lambda opt: StepDecay(opt, 2))``)
defers construction until ``on_fit_start``, when the engine's optimizer
is known; a prebuilt scheduler is accepted too.
"""

from __future__ import annotations

from typing import Callable, Optional, Union

from repro.optim.optimizer import Optimizer
from repro.optim.schedulers import Scheduler
from repro.training.callbacks.base import Callback, TrainingContext

_INTERVALS = ("epoch", "batch")

SchedulerFactory = Callable[[Optimizer], Scheduler]


class LRSchedulerCallback(Callback):
    """Steps an LR scheduler on a fixed cadence, guard-aware."""

    def __init__(
        self,
        scheduler: Union[Scheduler, SchedulerFactory],
        interval: str = "epoch",
    ) -> None:
        if interval not in _INTERVALS:
            raise ValueError(f"interval must be one of {_INTERVALS}, got {interval!r}")
        self.interval = interval
        self._factory: Optional[SchedulerFactory] = None
        self.scheduler: Optional[Scheduler] = None
        if isinstance(scheduler, Scheduler):
            self.scheduler = scheduler
        else:
            self._factory = scheduler

    # ------------------------------------------------------------------
    def on_fit_start(self, ctx: TrainingContext) -> None:
        if self.scheduler is None:
            self.scheduler = self._factory(ctx.optimizer)
        elif self.scheduler.optimizer is not ctx.optimizer:
            raise ValueError(
                "scheduler wraps a different optimizer than the engine's"
            )

    def on_batch_end(self, ctx: TrainingContext) -> None:
        if self.interval == "batch":
            self._step(ctx)

    def on_epoch_end(self, ctx: TrainingContext) -> None:
        if self.interval == "epoch":
            self._step(ctx)

    # ------------------------------------------------------------------
    def _step(self, ctx: TrainingContext) -> None:
        lr = self.scheduler.step()
        if ctx.lr_scale != 1.0:
            ctx.optimizer.lr = lr * ctx.lr_scale
