"""Fault-injection callback: corrupts the batch stream for chaos drills.

Wraps a seeded :class:`~repro.reliability.faults.FaultInjector`; the
corruption is a pure function of (epoch, batch index, injector seed),
so injected faults replay identically across resumed runs.
"""

from __future__ import annotations

from repro.reliability.faults import FaultInjector
from repro.training.callbacks.base import Callback, TrainingContext


class FaultInjectionCallback(Callback):
    """Replaces ``ctx.batch`` with a (possibly) corrupted copy."""

    def __init__(self, injector: FaultInjector) -> None:
        self.injector = injector

    def on_batch_start(self, ctx: TrainingContext) -> None:
        ctx.batch = self.injector.corrupt(ctx.batch, ctx.epoch, ctx.batch_index)
