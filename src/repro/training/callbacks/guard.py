"""Divergence-guard callback: detect, roll back, decay the LR.

Re-homes the ``Trainer`` monolith's loss-guard policy: a
:class:`~repro.reliability.guards.LossGuard` classifies every batch
loss in ``on_loss_computed``; on a trip the callback vetoes the
optimizer step, rolls model and optimizer back to the last good
in-memory snapshot, multiplies the learning rate by ``lr_factor`` (down
to ``min_lr``), and records a
:class:`~repro.reliability.guards.GuardEvent` in the history.  The
rolling loss window and trip count ride along in checkpoint metadata so
a resumed run continues with identical guard state.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.reliability.errors import DivergenceError
from repro.reliability.guards import GuardEvent, LossGuard, LossGuardConfig
from repro.training.callbacks.base import Callback, TrainingContext
from repro.utils.logging import get_logger, log_event

logger = get_logger("training")


class LossGuardCallback(Callback):
    """Watches the loss stream; rolls back and halves the LR on a trip."""

    def __init__(
        self,
        config: Optional[LossGuardConfig] = None,
        guard: Optional[LossGuard] = None,
    ) -> None:
        if guard is not None and config is not None:
            raise ValueError("pass either a config or a prebuilt guard, not both")
        self.guard = guard or LossGuard(config)
        self._last_good: Optional[Dict[str, Any]] = None

    # ------------------------------------------------------------------
    def on_fit_start(self, ctx: TrainingContext) -> None:
        self._refresh(ctx)

    def on_loss_computed(self, ctx: TrainingContext) -> None:
        reason = self.guard.observe(ctx.loss_value)
        if reason is None:
            return
        ctx.skip_step = True
        self._handle_trip(ctx, reason)

    def on_batch_end(self, ctx: TrainingContext) -> None:
        if ctx.clean_steps % self.guard.config.refresh_every == 0:
            self._refresh(ctx)

    # -- checkpoint integration ----------------------------------------
    def checkpoint_metadata(self, ctx: TrainingContext) -> Dict[str, Any]:
        return {
            "guard_recent": self.guard.recent_losses,
            "guard_trips": self.guard.trips,
        }

    def on_resume(self, ctx: TrainingContext, snapshot) -> None:
        for value in snapshot.metadata.get("guard_recent", []):
            self.guard.record(value)
        self.guard.trips = int(snapshot.metadata.get("guard_trips", 0))

    # ------------------------------------------------------------------
    def _handle_trip(self, ctx: TrainingContext, reason: str) -> None:
        guard = self.guard
        if guard.trips > guard.config.max_trips:
            raise DivergenceError(
                f"loss guard tripped {guard.trips} times (last: {reason} at "
                f"epoch {ctx.epoch} batch {ctx.batch_index}); training is "
                "not recovering"
            )
        self._rollback(ctx)
        new_lr = max(ctx.optimizer.lr * guard.config.lr_factor, guard.config.min_lr)
        ctx.optimizer.lr = new_lr
        ctx.lr_scale *= guard.config.lr_factor
        event = GuardEvent(
            epoch=ctx.epoch,
            batch=ctx.batch_index,
            reason=reason,
            value=float(ctx.loss_value),
            action="rollback_lr_halved",
            lr_after=new_lr,
        )
        ctx.history.events.append(event)
        # Re-capture the rollback point so the halved learning rate (and
        # the restored weights) survive a consecutive trip.
        self._refresh(ctx)
        log_event(
            logger,
            "loss_guard_trip",
            level=30,  # WARNING
            reason=reason,
            epoch=ctx.epoch,
            batch=ctx.batch_index,
            value=ctx.loss_value,
            lr_after=new_lr,
        )

    def _refresh(self, ctx: TrainingContext) -> None:
        self._last_good = {
            "model": ctx.model.state_dict(),
            "optimizer": ctx.optimizer.state_dict(),
        }

    def _rollback(self, ctx: TrainingContext) -> None:
        if self._last_good is None:
            return
        ctx.model.load_state_dict(self._last_good["model"])
        ctx.optimizer.load_state_dict(self._last_good["optimizer"])
