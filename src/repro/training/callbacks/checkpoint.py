"""Checkpoint callback: periodic checksummed snapshots of the run.

Re-homes the monolith's checkpoint plumbing.  Mid-epoch saves (every
``every_n_batches`` clean batches) store the *epoch-start* RNG state
plus the number of batches already consumed, so a resume re-draws the
identical shuffle permutation and skips forward; epoch-boundary saves
are positioned at the start of the next epoch.  Snapshot layout and
file format are unchanged from the monolithic trainer -- old
checkpoints resume through the callback and vice versa.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.reliability.checkpoint import CheckpointManager, TrainingSnapshot
from repro.training.callbacks.base import Callback, TrainingContext
from repro.utils.logging import get_logger, log_event

logger = get_logger("training")

#: Checkpoint step ids order epoch boundaries after any mid-epoch save.
_STEPS_PER_EPOCH_KEY = 1_000_000


class CheckpointCallback(Callback):
    """Saves rotating :class:`TrainingSnapshot` files during training."""

    def __init__(
        self,
        directory: str,
        keep: int = 3,
        every_n_batches: Optional[int] = None,
        manager: Optional[CheckpointManager] = None,
    ) -> None:
        if every_n_batches is not None and every_n_batches < 1:
            raise ValueError(
                f"every_n_batches must be >= 1 or None, got {every_n_batches}"
            )
        self.manager = manager or CheckpointManager(directory, keep=keep)
        self.every_n_batches = every_n_batches

    # ------------------------------------------------------------------
    def on_batch_end(self, ctx: TrainingContext) -> None:
        if (
            self.every_n_batches is not None
            and (ctx.batch_index + 1) % self.every_n_batches == 0
        ):
            self._save(
                ctx,
                epoch=ctx.epoch,
                batch_in_epoch=ctx.batch_index + 1,
                rng_state=ctx.epoch_start_rng,
                epoch_loss_sum=ctx.epoch_loss_sum,
                n_batches_done=ctx.n_batches_done,
            )

    def on_epoch_end(self, ctx: TrainingContext) -> None:
        # Epoch-boundary snapshot: positioned at the *start* of the next
        # epoch, so the stored RNG state is the one the next shuffle
        # permutation will be drawn from.
        self._save(
            ctx,
            epoch=ctx.epoch + 1,
            batch_in_epoch=0,
            rng_state=ctx.rng.bit_generator.state,
            epoch_loss_sum=0.0,
            n_batches_done=0,
        )

    # ------------------------------------------------------------------
    def _save(
        self,
        ctx: TrainingContext,
        epoch: int,
        batch_in_epoch: int,
        rng_state: Optional[Dict[str, Any]],
        epoch_loss_sum: float,
        n_batches_done: int,
    ) -> None:
        snapshot = TrainingSnapshot(
            model_state=ctx.model.state_dict(),
            optimizer_state=ctx.optimizer.state_dict(),
            trainer_rng_state=rng_state,
            module_rng_states=[
                g.bit_generator.state for g in ctx.engine.module_rngs()
            ],
            history=ctx.history.to_dict(),
            epoch=epoch,
            batch_in_epoch=batch_in_epoch,
            epoch_loss_sum=epoch_loss_sum,
            n_batches_done=n_batches_done,
            best_metric=float(ctx.best_metric),
            stale=ctx.stale,
            metadata=ctx.collect_checkpoint_metadata(),
        )
        step = epoch * _STEPS_PER_EPOCH_KEY + batch_in_epoch
        path = self.manager.save(snapshot, step)
        log_event(
            logger,
            "checkpoint_saved",
            path=str(path),
            epoch=epoch,
            batch=batch_in_epoch,
        )
