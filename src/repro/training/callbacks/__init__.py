"""Standalone callbacks for the composable training engine.

Each production concern that used to live inside the ``Trainer.fit``
monolith is one class here, attachable to any
:class:`~repro.training.engine.TrainingEngine`:

* :class:`CheckpointCallback` -- periodic checksummed snapshots,
  mid-epoch and at epoch boundaries (PR 1's checkpoint/resume);
* :class:`LossGuardCallback` -- NaN/spike detection with rollback and
  LR decay (PR 1's divergence guards);
* :class:`PropensityMonitorCallback` -- epoch-end ``o_hat`` clip-boundary
  pile-up warnings (PR 1's propensity monitoring);
* :class:`FaultInjectionCallback` -- seeded batch corruption for chaos
  drills (PR 1's fault injection);
* :class:`OpProfilerCallback` -- op-level profiling of the fit loop
  (PR 2's profiler, ``TrainConfig.profile_ops``);
* :class:`LRSchedulerCallback` -- per-epoch/per-batch LR schedules,
  guard-aware;
* :class:`ValidationCallback` -- epoch-end evaluation and early stopping;
* :class:`DriftReferenceCallback` -- freezes the training-time
  feature/propensity/CVR distributions for the serving drift sentinels;
* :class:`LifecycleCallback` -- publishes the finished model into the
  versioned :class:`~repro.lifecycle.registry.ModelRegistry` as a
  promotion-gate candidate.

See :mod:`repro.training.callbacks.base` for the hook protocol and its
ordering guarantees.
"""

from repro.training.callbacks.base import Callback, CallbackList, TrainingContext
from repro.training.callbacks.checkpoint import CheckpointCallback
from repro.training.callbacks.drift import DriftReferenceCallback
from repro.training.callbacks.faults import FaultInjectionCallback
from repro.training.callbacks.guard import LossGuardCallback
from repro.training.callbacks.lifecycle import LifecycleCallback
from repro.training.callbacks.monitor import PropensityMonitorCallback
from repro.training.callbacks.profiling import OpProfilerCallback
from repro.training.callbacks.scheduling import LRSchedulerCallback
from repro.training.callbacks.validation import ValidationCallback

__all__ = [
    "Callback",
    "CallbackList",
    "TrainingContext",
    "CheckpointCallback",
    "DriftReferenceCallback",
    "FaultInjectionCallback",
    "LifecycleCallback",
    "LossGuardCallback",
    "PropensityMonitorCallback",
    "OpProfilerCallback",
    "LRSchedulerCallback",
    "ValidationCallback",
]
