"""Validation and early-stopping callback.

After every epoch, evaluates the model on ``ctx.validation`` (when one
was passed to ``fit``), appends the entire-space CVR AUC (falling back
to the click-space AUC when the dataset has no oracle) to the history,
and -- when a patience is configured -- sets ``history.stopped_early``
after ``patience`` epochs without improvement.  ``best_metric`` and
``stale`` live on the shared context so the checkpoint callback
snapshots them and a resumed run continues the same patience window.
"""

from __future__ import annotations

from typing import Optional

from repro.training.callbacks.base import Callback, TrainingContext
from repro.training.evaluation import evaluate_model


class ValidationCallback(Callback):
    """Epoch-end evaluation with optional early stopping."""

    def __init__(self, patience: Optional[int] = None) -> None:
        if patience is not None and patience < 0:
            raise ValueError(f"patience must be >= 0 or None, got {patience}")
        self.patience = patience

    def on_epoch_end(self, ctx: TrainingContext) -> None:
        if ctx.validation is None:
            return
        result = evaluate_model(ctx.model, ctx.validation)
        metric = (
            result.cvr_auc_d
            if result.cvr_auc_d is not None
            else (result.cvr_auc_o or 0.5)
        )
        ctx.history.validation_cvr_auc.append(metric)
        if self.patience is not None:
            if metric > ctx.best_metric + 1e-6:
                ctx.best_metric = metric
                ctx.stale = 0
            else:
                ctx.stale += 1
                if ctx.stale >= self.patience:
                    ctx.history.stopped_early = True
        ctx.model.train()
