"""Op-profiling callback.

Installs an :class:`~repro.perf.OpProfiler` around the whole fit loop
(via ``ctx.stack``, so it is uninstalled even when the run dies
mid-epoch) and writes the summary into ``history.op_profile`` on normal
completion -- exactly the contract ``TrainConfig.profile_ops`` has
always had.
"""

from __future__ import annotations

from typing import Optional

from repro.perf import OpProfiler
from repro.training.callbacks.base import Callback, TrainingContext


class OpProfilerCallback(Callback):
    """Profiles every autograd op executed during the fit loop."""

    def __init__(self) -> None:
        self.profiler: Optional[OpProfiler] = None

    def on_fit_start(self, ctx: TrainingContext) -> None:
        self.profiler = OpProfiler()
        ctx.stack.enter_context(self.profiler)

    def on_fit_end(self, ctx: TrainingContext) -> None:
        # ctx.stack has already closed here, so the profiler's wall
        # clock is final and the active-profiler slot is restored.
        if self.profiler is not None:
            ctx.history.op_profile = self.profiler.summary()
