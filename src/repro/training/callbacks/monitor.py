"""Propensity-collapse monitoring callback.

After every epoch the CTR head is probed on a fixed sample of the
training set; a pile-up of ``o_hat`` at the clip boundary is surfaced
as a :class:`~repro.reliability.errors.PropensityCollapseWarning` and
recorded as a ``GuardEvent(action="warn")`` in the history -- the
production failure mode where ``1/o_hat`` weights saturate and the
debiasing quietly stops working.
"""

from __future__ import annotations

from repro.data.stream import as_source
from repro.reliability.guards import GuardEvent, warn_on_propensity_collapse
from repro.training.callbacks.base import Callback, TrainingContext


class PropensityMonitorCallback(Callback):
    """Warns when sampled ``o_hat`` piles up at the clip boundary."""

    def __init__(self, sample: int = 2048, threshold: float = 0.5) -> None:
        if sample < 0:
            raise ValueError(f"sample must be >= 0, got {sample}")
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"threshold must be in (0, 1], got {threshold}")
        self.sample = sample
        self.threshold = threshold

    def on_epoch_end(self, ctx: TrainingContext) -> None:
        if self.sample <= 0:
            return
        floor = getattr(ctx.model.config, "propensity_floor", None)
        if not floor:
            return
        # ``sample_batch`` works for datasets and streaming sources
        # alike (a deterministic prefix probe either way).
        sample = as_source(ctx.train).sample_batch(self.sample)
        preds = ctx.model.predict(sample)
        fraction = warn_on_propensity_collapse(
            preds.ctr,
            floor,
            threshold=self.threshold,
            context=f"epoch {ctx.epoch}",
        )
        if fraction is not None:
            ctx.history.events.append(
                GuardEvent(
                    epoch=ctx.epoch,
                    batch=-1,
                    reason="propensity_collapse",
                    value=fraction,
                    action="warn",
                )
            )
