"""Publish each finished training run into the model registry.

The registry's invariant is "no model serves unless it was published,
verified, and promoted" -- this callback closes the loop on the
training side: on normal fit completion the freshly trained parameters
become a content-addressed registry *candidate*, carrying the training
config hash, the final/best losses, and (when a
:class:`~repro.training.callbacks.drift.DriftReferenceCallback` runs
earlier in the stack) the path of the frozen drift reference that the
promotion gate and canary sentinel will compare serving traffic
against.

Publishing is not promoting: the candidate still has to clear the
:class:`~repro.lifecycle.gate.PromotionGate` and the canary before it
takes traffic.  Attach the callback *after* the drift-reference
callback so the reference exists when the version is written.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.lifecycle.registry import ModelRegistry, ModelVersion
from repro.training.callbacks.base import Callback, TrainingContext
from repro.training.callbacks.drift import DriftReferenceCallback
from repro.utils.logging import get_logger, log_event

logger = get_logger("training.callbacks.lifecycle")


class LifecycleCallback(Callback):
    """Registers the trained model as a registry candidate at fit end.

    Parameters
    ----------
    registry:
        Destination :class:`~repro.lifecycle.registry.ModelRegistry`.
    drift_callback:
        Optional sibling :class:`DriftReferenceCallback`; when it has
        persisted a reference to disk, the path is recorded on the
        published version so serving can rebuild the sentinel without
        the training data.
    note:
        Free-form provenance recorded on the version (e.g. the
        experiment name or feedback-loop round).
    """

    def __init__(
        self,
        registry: ModelRegistry,
        drift_callback: Optional[DriftReferenceCallback] = None,
        note: str = "",
    ) -> None:
        self.registry = registry
        self.drift_callback = drift_callback
        self.note = note
        #: The version published by the most recent completed fit.
        self.version: Optional[ModelVersion] = None

    def on_fit_end(self, ctx: TrainingContext) -> None:
        history = ctx.history
        metrics: Dict[str, float] = {}
        if history.epoch_losses:
            metrics["final_train_loss"] = float(history.epoch_losses[-1])
        if history.validation_cvr_auc:
            metrics["validation_cvr_auc"] = float(history.validation_cvr_auc[-1])
            metrics["best_val_metric"] = float(ctx.best_metric)
        reference_path = None
        if (
            self.drift_callback is not None
            and self.drift_callback.path is not None
            and self.drift_callback.reference is not None
        ):
            reference_path = self.drift_callback.path
        self.version = self.registry.publish(
            ctx.model,
            train_config=ctx.config,
            metrics=metrics,
            drift_reference_path=reference_path,
            note=self.note,
        )
        log_event(
            logger,
            "candidate_published",
            version=self.version.version,
            digest=self.version.params_digest[:16],
            epochs=len(history.epoch_losses),
        )

    def checkpoint_metadata(self, ctx: TrainingContext) -> Dict[str, Any]:
        if self.version is None:
            return {}
        return {"registry_version": self.version.version}
