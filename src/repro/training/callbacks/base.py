"""The hook protocol of the composable training engine.

:class:`~repro.training.engine.TrainingEngine` owns only the canonical
step loop (forward -> loss -> backward -> clip -> step).  Everything
else -- checkpointing, divergence guards, propensity monitoring, fault
injection, profiling, LR scheduling, validation/early stopping -- is a
:class:`Callback` observing the loop through a fixed set of hooks.

Hook ordering guarantees (per ``fit``):

``on_fit_start``
    Once, after ``model.train()`` and (on resume) after the snapshot has
    been restored; ``ctx.stack`` is an open ``ExitStack`` that unwinds
    when ``fit`` returns *or raises*, so callbacks may register context
    managers (the profiler does).
``on_epoch_start``
    Once per epoch, after the epoch counters and the epoch-start RNG
    state (``ctx.epoch_start_rng``) have been captured.
``on_batch_start``
    Before the forward pass.  Callbacks may *replace* ``ctx.batch``
    (fault injection does).
``on_loss_computed``
    After the forward pass, before ``backward``.  ``ctx.loss_value``
    holds the scalar loss; setting ``ctx.skip_step = True`` vetoes the
    optimizer step for this batch (the loss guard's rollback path).
    Vetoed batches fire no further batch hooks.
``on_backward_end``
    After ``loss.backward()``, before gradient clipping and
    ``optimizer.step()`` -- the place to inspect or edit raw gradients.
``on_batch_end``
    After the optimizer step and the loss accounting
    (``ctx.epoch_loss_sum`` / ``ctx.n_batches_done`` /
    ``ctx.clean_steps`` already updated).  Only fires for clean
    (non-vetoed) batches.
``on_epoch_end``
    After the mean epoch loss has been appended to the history.
    Callbacks run in registration order, which the default stack uses
    to guarantee: propensity monitoring -> validation/early-stopping ->
    epoch-boundary checkpoint (so the snapshot sees the fresh
    ``best_metric``/``stale``).  ``history.stopped_early`` set here ends
    the run after the remaining epoch-end hooks.
``on_fit_end``
    Once, on normal completion only (after ``ctx.stack`` has closed),
    just before the engine switches the model back to eval mode.
``on_resume``
    When ``fit(resume_from=...)`` restored a snapshot, before
    ``on_fit_start``; callbacks re-hydrate their own state from
    ``snapshot.metadata`` (the loss guard restores its rolling window).
``checkpoint_metadata``
    Not a lifecycle hook: the checkpoint callback polls every callback
    for extra snapshot metadata right before a save.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.data.dataset import Batch, InteractionDataset
    from repro.data.stream import DataSource
    from repro.models.base import MultiTaskModel
    from repro.optim.optimizer import Optimizer
    from repro.reliability.checkpoint import TrainingSnapshot
    from repro.training.config import TrainConfig
    from repro.training.engine import TrainingEngine
    from repro.training.history import TrainingHistory


@dataclass
class TrainingContext:
    """Mutable shared state of one ``fit`` call.

    One instance is created per ``fit`` and threaded through every
    hook; callbacks communicate with the engine (and with each other)
    exclusively through it.
    """

    engine: "TrainingEngine"
    model: "MultiTaskModel"
    optimizer: "Optimizer"
    config: "TrainConfig"
    history: "TrainingHistory"
    #: The training data as passed to ``fit`` -- an
    #: :class:`~repro.data.dataset.InteractionDataset` or a streaming
    #: :class:`~repro.data.stream.DataSource`.  Callbacks needing a
    #: probe batch should go through
    #: :func:`repro.data.stream.as_source` / ``sample_batch``.
    train: "InteractionDataset | DataSource"
    validation: Optional["InteractionDataset"]
    rng: np.random.Generator
    callbacks: Sequence["Callback"] = ()
    #: ExitStack alive for the duration of the fit loop.
    stack: Optional[contextlib.ExitStack] = None

    # -- loop position -------------------------------------------------
    epoch: int = 0
    batch_index: int = -1
    batch: Optional["Batch"] = None
    #: Scalar loss of the current batch (valid from ``on_loss_computed``).
    loss_value: float = float("nan")
    #: Set by a callback in ``on_loss_computed`` to veto the step.
    skip_step: bool = False
    #: Trainer RNG state captured at the start of the current epoch
    #: (what a mid-epoch snapshot must store to re-draw the shuffle).
    epoch_start_rng: Optional[Dict[str, Any]] = None

    # -- accounting ----------------------------------------------------
    epoch_loss_sum: float = 0.0
    n_batches_done: int = 0
    #: Clean optimizer steps this epoch (guard refresh cadence).
    clean_steps: int = 0

    # -- early stopping ------------------------------------------------
    best_metric: float = float("-inf")
    stale: int = 0

    #: Cumulative LR decay applied by guard trips; the LR-scheduler
    #: callback multiplies its scheduled rate by this so a guard halving
    #: survives the next scheduler step.
    lr_scale: float = 1.0

    # ------------------------------------------------------------------
    def collect_checkpoint_metadata(self) -> Dict[str, Any]:
        """Snapshot metadata: model name plus every callback's extras."""
        metadata: Dict[str, Any] = {
            "model_name": getattr(
                self.model, "model_name", type(self.model).__name__
            ),
        }
        for callback in self.callbacks:
            metadata.update(callback.checkpoint_metadata(self))
        return metadata


class Callback:
    """Base class: every hook is a no-op.  Subclass and override."""

    def on_fit_start(self, ctx: TrainingContext) -> None:  # noqa: B027
        pass

    def on_epoch_start(self, ctx: TrainingContext) -> None:  # noqa: B027
        pass

    def on_batch_start(self, ctx: TrainingContext) -> None:  # noqa: B027
        pass

    def on_loss_computed(self, ctx: TrainingContext) -> None:  # noqa: B027
        pass

    def on_backward_end(self, ctx: TrainingContext) -> None:  # noqa: B027
        pass

    def on_batch_end(self, ctx: TrainingContext) -> None:  # noqa: B027
        pass

    def on_epoch_end(self, ctx: TrainingContext) -> None:  # noqa: B027
        pass

    def on_fit_end(self, ctx: TrainingContext) -> None:  # noqa: B027
        pass

    def on_resume(
        self, ctx: TrainingContext, snapshot: "TrainingSnapshot"
    ) -> None:  # noqa: B027
        pass

    def checkpoint_metadata(self, ctx: TrainingContext) -> Dict[str, Any]:
        """Extra key/values to store in snapshot metadata."""
        return {}


class CallbackList:
    """Dispatches one hook to every callback, in registration order."""

    def __init__(self, callbacks: Sequence[Callback] = ()) -> None:
        self.callbacks: List[Callback] = list(callbacks)

    def __iter__(self):
        return iter(self.callbacks)

    def __len__(self) -> int:
        return len(self.callbacks)

    def fire(self, hook: str, ctx: TrainingContext, *args: Any) -> None:
        for callback in self.callbacks:
            getattr(callback, hook)(ctx, *args)
