"""The composable training engine.

:class:`TrainingEngine` owns exactly the canonical step loop::

    forward -> loss -> backward -> clip -> step

plus the invariants the loop depends on (dataset validation, sparse
embedding gradients, trusted indices, the shuffle RNG, and bit-exact
resume of the loop position).  Everything else -- checkpointing,
divergence guards, propensity monitoring, fault injection, profiling,
LR scheduling, validation/early stopping -- attaches through the
:class:`~repro.training.callbacks.Callback` hook protocol, so scaling
features are "write a callback", not "edit the loop".

The legacy :class:`~repro.training.trainer.Trainer` facade assembles
the default callback stack from a ``ReliabilityConfig`` and is
bit-exact with the pre-engine monolith (see
``tests/training/test_engine_golden.py``).
"""

from __future__ import annotations

import contextlib
from pathlib import Path
from typing import List, Optional, Sequence

import numpy as np

from repro.autograd.plan import PlanRunner
from repro.autograd.sparse import sparse_grads
from repro.data.dataset import InteractionDataset
from repro.data.stream import DataSource, as_source
from repro.models.base import MultiTaskModel
from repro.nn.embedding import trusted_indices
from repro.optim import Adam, clip_global_norm
from repro.optim.optimizer import Optimizer
from repro.reliability.checkpoint import (
    CheckpointManager,
    TrainingSnapshot,
    load_snapshot,
)
from repro.reliability.errors import CheckpointCorruptError
from repro.training.callbacks.base import Callback, CallbackList, TrainingContext
from repro.training.config import TrainConfig
from repro.training.history import TrainingHistory
from repro.utils.logging import get_logger, log_event

logger = get_logger("training")


class TrainingEngine:
    """Minimal step-loop owner; all policy lives in callbacks.

    Parameters
    ----------
    model, config:
        The model to train and the loop knobs.  The ``lambda_2
        ||theta||^2`` regularizer of Eq. (14) is applied as optimizer
        weight decay.
    optimizer:
        Optional pre-built optimizer (the ``Trainer`` facade shares its
        own).  Defaults to the paper's Adam.
    callbacks:
        Default callback stack for every ``fit`` call; a ``fit``-level
        ``callbacks=`` argument replaces it for that call.
    """

    def __init__(
        self,
        model: MultiTaskModel,
        config: TrainConfig,
        optimizer: Optional[Optimizer] = None,
        callbacks: Sequence[Callback] = (),
    ) -> None:
        self.model = model
        self.config = config.validate()
        self.optimizer = optimizer or Adam(
            model.parameters(),
            lr=config.learning_rate,
            weight_decay=config.weight_decay,
        )
        self.callbacks: List[Callback] = list(callbacks)
        self._rng = np.random.default_rng(config.seed)
        #: Plan runner of the most recent ``fit`` call (``None`` when
        #: ``config.compile_plan`` is off); exposes trace/replay stats.
        self.plan_runner: Optional[PlanRunner] = None

    # ------------------------------------------------------------------
    def fit(
        self,
        train: "InteractionDataset | DataSource",
        validation: Optional[InteractionDataset] = None,
        resume_from: "Path | str | None" = None,
        callbacks: Optional[Sequence[Callback]] = None,
    ) -> TrainingHistory:
        """Run the step loop for up to ``config.epochs`` epochs.

        ``train`` may be a RAM-resident :class:`InteractionDataset`
        (wrapped in an :class:`~repro.data.stream.InMemorySource`,
        bit-exact with the historical path) or any
        :class:`~repro.data.stream.DataSource` -- the engine only ever
        sees one epoch-iterable of batches, so out-of-core training is
        the same loop.

        ``resume_from`` accepts a checkpoint file or a checkpoint
        directory (the newest *valid* snapshot is used); the run then
        continues bit-exactly from where the snapshot was taken,
        re-hydrating each callback's state from snapshot metadata.  The
        snapshot's ``batch_in_epoch`` is the stream cursor: the source
        skips that many batches while keeping its RNG stream aligned,
        so continuation is bit-exact on streaming sources too.
        """
        source = as_source(train)
        hooks = CallbackList(self.callbacks if callbacks is None else callbacks)
        ctx = TrainingContext(
            engine=self,
            model=self.model,
            optimizer=self.optimizer,
            config=self.config,
            history=TrainingHistory(),
            train=train,
            validation=validation,
            rng=self._rng,
            callbacks=hooks.callbacks,
        )
        runner: Optional[PlanRunner] = None
        if self.config.compile_plan:
            runner = PlanRunner(
                self.model, expected_batch_size=self.config.batch_size
            )
        self.plan_runner = runner
        start_epoch = 0
        skip_batches = 0

        if resume_from is not None:
            snapshot = self._resolve_resume(resume_from)
            self._restore(snapshot)
            ctx.history = TrainingHistory.from_dict(snapshot.history)
            ctx.best_metric = snapshot.best_metric
            ctx.stale = snapshot.stale
            start_epoch = snapshot.epoch
            skip_batches = snapshot.batch_in_epoch
            ctx.epoch_loss_sum = snapshot.epoch_loss_sum
            ctx.n_batches_done = snapshot.n_batches_done
            hooks.fire("on_resume", ctx, snapshot)
            log_event(
                logger,
                "resume",
                epoch=start_epoch,
                batch=skip_batches,
                lr=self.optimizer.lr,
            )
            if ctx.history.stopped_early:
                # The snapshotted run already finished via early
                # stopping; there is nothing left to train.
                log_event(logger, "resume_noop", reason="stopped_early")
                self.model.eval()
                return ctx.history

        self.model.train()
        with contextlib.ExitStack() as stack:
            ctx.stack = stack
            hooks.fire("on_fit_start", ctx)
            # One pass over the source proves every sparse id is in
            # range, which lets the embedding layer skip its per-lookup
            # bounds checks for the whole run (trusted_indices).
            source.validate()
            if validation is not None:
                validation.validate()
            if self.config.sparse_embedding_grads:
                stack.enter_context(sparse_grads(True))
            stack.enter_context(trusted_indices())
            self._enter_fit(ctx, stack)
            for epoch in range(start_epoch, self.config.epochs):
                ctx.epoch = epoch
                resuming_epoch = epoch == start_epoch and skip_batches > 0
                if not resuming_epoch:
                    ctx.epoch_loss_sum = 0.0
                    ctx.n_batches_done = 0
                ctx.epoch_start_rng = self._rng.bit_generator.state
                ctx.clean_steps = 0
                hooks.fire("on_epoch_start", ctx)
                start_batch = skip_batches if resuming_epoch else 0
                for i, batch in enumerate(
                    source.iter_batches(
                        self.config.batch_size,
                        rng=self._rng,
                        shuffle=self.config.shuffle,
                        drop_last=self.config.drop_last,
                        start_batch=start_batch,
                    ),
                    start=start_batch,
                ):
                    ctx.batch_index = i
                    ctx.batch = batch
                    hooks.fire("on_batch_start", ctx)
                    loss = self._forward(ctx, runner)
                    ctx.skip_step = False
                    hooks.fire("on_loss_computed", ctx)
                    if ctx.skip_step:
                        continue
                    self._backward(ctx, runner, loss)
                    hooks.fire("on_backward_end", ctx)
                    if self.config.grad_clip is not None:
                        clip_global_norm(
                            self.model.parameters(), self.config.grad_clip
                        )
                    self.optimizer.step()
                    ctx.epoch_loss_sum += ctx.loss_value
                    ctx.n_batches_done += 1
                    ctx.clean_steps += 1
                    hooks.fire("on_batch_end", ctx)
                    if (
                        self.config.max_batches_per_epoch is not None
                        and i + 1 >= self.config.max_batches_per_epoch
                    ):
                        break
                ctx.history.epoch_losses.append(
                    ctx.epoch_loss_sum / max(ctx.n_batches_done, 1)
                )
                logger.debug(
                    "epoch %d: mean loss %.5f",
                    epoch,
                    ctx.history.epoch_losses[-1],
                )
                hooks.fire("on_epoch_end", ctx)
                if ctx.history.stopped_early:
                    break
        hooks.fire("on_fit_end", ctx)
        self.model.eval()
        return ctx.history

    # -- the step kernel (overridden by the sharded engine) ------------
    def _enter_fit(self, ctx: TrainingContext, stack: contextlib.ExitStack) -> None:
        """Acquire per-fit resources on ``ctx.stack`` (base: none).

        The sharded engine starts its worker pool here, so pool
        teardown rides the same ``ExitStack`` that unwinds the sparse-
        gradient and trusted-index modes -- including on exceptions.
        """

    def _forward(self, ctx: TrainingContext, runner: Optional[PlanRunner]):
        """Compute the batch loss; sets ``ctx.loss_value``.

        Returns an opaque handle passed back to :meth:`_backward` (the
        live loss tensor here; the sharded engine returns ``None`` and
        stashes aggregated gradients instead).
        """
        if runner is not None:
            loss = runner.forward(ctx.batch)
        else:
            loss = self.model.loss(ctx.batch)
        ctx.loss_value = loss.item()
        return loss

    def _backward(
        self, ctx: TrainingContext, runner: Optional[PlanRunner], loss
    ) -> None:
        """Populate every parameter's ``.grad`` for the pending step."""
        self.optimizer.zero_grad()
        if runner is not None:
            runner.backward(loss)
        else:
            loss.backward()

    # -- resume plumbing -----------------------------------------------
    def _resolve_resume(self, resume_from: "Path | str") -> TrainingSnapshot:
        path = Path(resume_from)
        if path.is_dir():
            manager = CheckpointManager(path, keep=1)
            latest = manager.latest()
            if latest is None:
                raise CheckpointCorruptError(f"no valid checkpoint found in {path}")
            return manager.load(latest)
        return load_snapshot(path)

    def _restore(self, snapshot: TrainingSnapshot) -> None:
        self.model.load_state_dict(snapshot.model_state)
        self.optimizer.load_state_dict(snapshot.optimizer_state)
        if snapshot.trainer_rng_state is not None:
            self._rng.bit_generator.state = snapshot.trainer_rng_state
        rngs = self.module_rngs()
        if snapshot.module_rng_states:
            if len(snapshot.module_rng_states) != len(rngs):
                raise CheckpointCorruptError(
                    f"snapshot has {len(snapshot.module_rng_states)} module "
                    f"RNG states, model has {len(rngs)}"
                )
            for gen, state in zip(rngs, snapshot.module_rng_states):
                gen.bit_generator.state = state

    def module_rngs(self) -> List[np.random.Generator]:
        """Every generator held by the model's modules, in stable order.

        Stochastic layers (dropout) draw from these during forward
        passes; capturing them makes resumed training bit-exact even
        when such layers are active.
        """
        return collect_module_rngs(self.model)


def collect_module_rngs(model: MultiTaskModel) -> List[np.random.Generator]:
    """Every generator held by ``model``'s modules, in stable order.

    Shared by the engine (checkpointing RNG states) and the parallel
    workers (reseeding their forked copies per shard so dropout draws
    are venue-independent).
    """
    rngs: List[np.random.Generator] = []
    seen = set()
    for module in model.modules():
        for name in sorted(vars(module)):
            value = vars(module)[name]
            if isinstance(value, np.random.Generator) and id(value) not in seen:
                seen.add(id(value))
                rngs.append(value)
    return rngs


# ----------------------------------------------------------------------
def create_engine(
    model: MultiTaskModel,
    config: TrainConfig,
    optimizer: Optional[Optimizer] = None,
    callbacks: Sequence[Callback] = (),
) -> TrainingEngine:
    """Engine factory: the sharded engine when parallel knobs are set.

    ``num_workers``/``num_shards`` unset returns the plain
    :class:`TrainingEngine` -- existing configs run the exact loop they
    always did, golden-pinned.
    """
    if config.parallel_enabled:
        from repro.training.parallel import ShardedTrainingEngine

        return ShardedTrainingEngine(
            model, config, optimizer=optimizer, callbacks=callbacks
        )
    return TrainingEngine(model, config, optimizer=optimizer, callbacks=callbacks)


def fit_model(
    model: MultiTaskModel,
    train: "InteractionDataset | DataSource",
    config: Optional[TrainConfig] = None,
    validation: Optional[InteractionDataset] = None,
    reliability=None,
    callbacks: Sequence[Callback] = (),
    resume_from: "Path | str | None" = None,
) -> TrainingHistory:
    """One-call training through the engine.

    Builds the default callback stack (validation/early stopping, plus
    whatever a :class:`~repro.reliability.ReliabilityConfig` arms and
    the op profiler when ``config.profile_ops``), appends any extra
    ``callbacks``, and runs ``fit``.  This is the entry point the
    experiment runners and examples use; ``Trainer`` remains as the
    object-shaped facade over the same path.
    """
    from repro.training.trainer import default_callbacks

    config = config or TrainConfig()
    engine = create_engine(model, config)
    stack = default_callbacks(config, reliability) + list(callbacks)
    return engine.fit(
        train, validation=validation, resume_from=resume_from, callbacks=stack
    )
