"""Training configuration."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional


@dataclass(frozen=True)
class TrainConfig:
    """Knobs of the training loop.

    Paper defaults (Section IV-A2): Adam, learning rate 0.001, batch
    size 1024, max 5 epochs, ``lambda_2 = 1e-4`` (here applied as
    optimizer weight decay -- mathematically the same L2 penalty).
    """

    epochs: int = 5
    batch_size: int = 1024
    learning_rate: float = 0.001
    weight_decay: float = 1e-4
    grad_clip: Optional[float] = 10.0
    shuffle: bool = True
    drop_last: bool = False
    seed: int = 0
    #: Stop early when the validation CVR AUC has not improved for this
    #: many epochs (None disables early stopping).
    early_stopping_patience: Optional[int] = None
    #: Embedding lookups emit coalesced sparse row-gradients instead of
    #: dense ``O(vocab x dim)`` scatters.  Bit-exact to the dense path
    #: (see ``tests/autograd/test_sparse_parity.py``); disable only when
    #: debugging with raw ``.grad`` arrays.
    sparse_embedding_grads: bool = True
    #: Record an op-level profile of the fit loop into
    #: ``TrainingHistory.op_profile`` (small constant overhead per op).
    profile_ops: bool = False
    #: Compile the autograd tape into a reusable execution plan: the
    #: first full-size step is traced, lowered to a pre-resolved ``out=``
    #: kernel sequence backed by a buffer arena, and replayed on every
    #: subsequent step.  Bit-exact to eager execution (see
    #: ``tests/autograd/test_plan_parity.py``); ragged final batches and
    #: shape/parameter changes fall back to eager automatically.
    compile_plan: bool = False
    #: Cap the number of batches consumed per epoch (None = the whole
    #: source).  Meant for streaming sources, where an "epoch" over a
    #: production log can be arbitrarily long: it bounds wall-clock per
    #: epoch-end checkpoint/validation without touching the data path.
    max_batches_per_epoch: Optional[int] = None

    # -- data-parallel worker pool (repro.training.parallel) -----------
    #: Size of the supervised ``multiprocessing`` worker pool; ``None``
    #: keeps training single-process.  ``num_workers=1`` is a valid
    #: (degenerate) pool, useful for isolating IPC from parallelism.
    num_workers: Optional[int] = None
    #: Shards per optimizer step.  Defaults to ``num_workers`` when the
    #: pool is on; may be set alone to run the *serial* sharded loop --
    #: the bit-exact single-process reference for a ``num_workers ==
    #: num_shards`` parallel run.
    num_shards: Optional[int] = None
    #: Per-dispatch deadline: how long the supervisor waits for one
    #: shard gradient before treating the worker as a straggler.
    worker_deadline_s: float = 30.0
    #: How often each worker's liveness thread beats.
    heartbeat_interval_s: float = 0.2
    #: A worker whose last heartbeat is older than this is declared
    #: dead (frozen process), not merely slow.  Must stay below
    #: ``worker_deadline_s`` so liveness is known by the time a
    #: dispatch deadline fires.
    heartbeat_timeout_s: float = 5.0
    #: Consecutive deadline strikes a worker survives before the
    #: supervisor SIGKILLs it as lost.
    worker_retries: int = 2
    #: Base pause before re-dispatching a missed shard elsewhere
    #: (jittered by ``worker_backoff_jitter`` through the supervisor's
    #: seeded RNG, capped by the remaining step deadline).
    worker_backoff_s: float = 0.01
    worker_backoff_jitter: float = 0.5
    #: Quorum: below this many live workers the pool gives up --
    #: falling back to single-process when
    #: ``single_process_fallback`` is set, raising ``WorkerPoolError``
    #: otherwise.
    min_workers: int = 1
    #: Losing quorum degrades to in-process training instead of
    #: aborting the run.
    single_process_fallback: bool = True

    def __post_init__(self) -> None:
        self.validate()

    @property
    def parallel_enabled(self) -> bool:
        """Whether fits should run through the sharded engine."""
        return self.num_workers is not None or (
            self.num_shards is not None and self.num_shards > 1
        )

    @property
    def effective_shards(self) -> int:
        """Shards per step the sharded engine starts with."""
        if self.num_shards is not None:
            return self.num_shards
        return self.num_workers if self.num_workers is not None else 1

    def validate(self) -> "TrainConfig":
        """Raise ``ValueError`` for nonsensical settings; returns self.

        Called automatically on construction and again by
        ``Trainer.__init__`` (defence in depth: configs built through
        ``dataclasses.replace`` tricks or deserialisation may bypass
        ``__post_init__`` semantics the caller expects).
        """
        if self.epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {self.epochs}")
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.learning_rate <= 0:
            raise ValueError(f"learning_rate must be > 0, got {self.learning_rate}")
        if self.weight_decay < 0:
            raise ValueError(f"weight_decay must be >= 0, got {self.weight_decay}")
        if self.grad_clip is not None and self.grad_clip <= 0:
            raise ValueError(f"grad_clip must be positive or None, got {self.grad_clip}")
        if self.early_stopping_patience is not None and self.early_stopping_patience < 0:
            raise ValueError(
                "early_stopping_patience must be >= 0 or None, got "
                f"{self.early_stopping_patience}"
            )
        if self.max_batches_per_epoch is not None and self.max_batches_per_epoch < 1:
            raise ValueError(
                "max_batches_per_epoch must be >= 1 or None, got "
                f"{self.max_batches_per_epoch}"
            )
        if self.num_workers is not None and self.num_workers < 1:
            raise ValueError(
                f"num_workers must be >= 1 or None, got {self.num_workers}"
            )
        if self.num_shards is not None and self.num_shards < 1:
            raise ValueError(
                f"num_shards must be >= 1 or None, got {self.num_shards}"
            )
        if self.worker_deadline_s <= 0:
            raise ValueError(
                f"worker_deadline_s must be > 0, got {self.worker_deadline_s}"
            )
        if self.heartbeat_interval_s <= 0:
            raise ValueError(
                f"heartbeat_interval_s must be > 0, got {self.heartbeat_interval_s}"
            )
        if self.heartbeat_timeout_s <= 0:
            raise ValueError(
                f"heartbeat_timeout_s must be > 0, got {self.heartbeat_timeout_s}"
            )
        if self.heartbeat_timeout_s >= self.worker_deadline_s:
            raise ValueError(
                "heartbeat_timeout_s must be < worker_deadline_s (liveness "
                "must be decidable by the time a dispatch deadline fires), "
                f"got {self.heartbeat_timeout_s} >= {self.worker_deadline_s}"
            )
        if self.heartbeat_interval_s >= self.heartbeat_timeout_s:
            raise ValueError(
                "heartbeat_interval_s must be < heartbeat_timeout_s, got "
                f"{self.heartbeat_interval_s} >= {self.heartbeat_timeout_s}"
            )
        if self.worker_retries < 0:
            raise ValueError(
                f"worker_retries must be >= 0, got {self.worker_retries}"
            )
        if self.worker_backoff_s < 0 or self.worker_backoff_jitter < 0:
            raise ValueError(
                "worker_backoff_s and worker_backoff_jitter must be >= 0, got "
                f"{self.worker_backoff_s} / {self.worker_backoff_jitter}"
            )
        if self.min_workers < 1:
            raise ValueError(f"min_workers must be >= 1, got {self.min_workers}")
        if self.num_workers is not None and self.min_workers > self.num_workers:
            raise ValueError(
                f"min_workers ({self.min_workers}) cannot exceed "
                f"num_workers ({self.num_workers})"
            )
        if self.compile_plan and self.parallel_enabled:
            raise ValueError(
                "compile_plan is incompatible with the sharded engine: "
                "plans are traced per-process over full-size batches, "
                "workers replay shard-size batches"
            )
        return self

    def with_overrides(self, **kwargs) -> "TrainConfig":
        return replace(self, **kwargs)
