"""Training configuration."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional


@dataclass(frozen=True)
class TrainConfig:
    """Knobs of the training loop.

    Paper defaults (Section IV-A2): Adam, learning rate 0.001, batch
    size 1024, max 5 epochs, ``lambda_2 = 1e-4`` (here applied as
    optimizer weight decay -- mathematically the same L2 penalty).
    """

    epochs: int = 5
    batch_size: int = 1024
    learning_rate: float = 0.001
    weight_decay: float = 1e-4
    grad_clip: Optional[float] = 10.0
    shuffle: bool = True
    drop_last: bool = False
    seed: int = 0
    #: Stop early when the validation CVR AUC has not improved for this
    #: many epochs (None disables early stopping).
    early_stopping_patience: Optional[int] = None
    #: Embedding lookups emit coalesced sparse row-gradients instead of
    #: dense ``O(vocab x dim)`` scatters.  Bit-exact to the dense path
    #: (see ``tests/autograd/test_sparse_parity.py``); disable only when
    #: debugging with raw ``.grad`` arrays.
    sparse_embedding_grads: bool = True
    #: Record an op-level profile of the fit loop into
    #: ``TrainingHistory.op_profile`` (small constant overhead per op).
    profile_ops: bool = False
    #: Compile the autograd tape into a reusable execution plan: the
    #: first full-size step is traced, lowered to a pre-resolved ``out=``
    #: kernel sequence backed by a buffer arena, and replayed on every
    #: subsequent step.  Bit-exact to eager execution (see
    #: ``tests/autograd/test_plan_parity.py``); ragged final batches and
    #: shape/parameter changes fall back to eager automatically.
    compile_plan: bool = False
    #: Cap the number of batches consumed per epoch (None = the whole
    #: source).  Meant for streaming sources, where an "epoch" over a
    #: production log can be arbitrarily long: it bounds wall-clock per
    #: epoch-end checkpoint/validation without touching the data path.
    max_batches_per_epoch: Optional[int] = None

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> "TrainConfig":
        """Raise ``ValueError`` for nonsensical settings; returns self.

        Called automatically on construction and again by
        ``Trainer.__init__`` (defence in depth: configs built through
        ``dataclasses.replace`` tricks or deserialisation may bypass
        ``__post_init__`` semantics the caller expects).
        """
        if self.epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {self.epochs}")
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.learning_rate <= 0:
            raise ValueError(f"learning_rate must be > 0, got {self.learning_rate}")
        if self.weight_decay < 0:
            raise ValueError(f"weight_decay must be >= 0, got {self.weight_decay}")
        if self.grad_clip is not None and self.grad_clip <= 0:
            raise ValueError(f"grad_clip must be positive or None, got {self.grad_clip}")
        if self.early_stopping_patience is not None and self.early_stopping_patience < 0:
            raise ValueError(
                "early_stopping_patience must be >= 0 or None, got "
                f"{self.early_stopping_patience}"
            )
        if self.max_batches_per_epoch is not None and self.max_batches_per_epoch < 1:
            raise ValueError(
                "max_batches_per_epoch must be >= 1 or None, got "
                f"{self.max_batches_per_epoch}"
            )
        return self

    def with_overrides(self, **kwargs) -> "TrainConfig":
        return replace(self, **kwargs)
