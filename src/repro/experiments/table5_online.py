"""Table V: the 7-day online A/B test on the Alipay-Search-like world.

Reproduces the protocol exactly: four buckets (MMOE base, ESCM2-IPW,
ESCM2-DR, DCMT) trained on the industrial scenario, disjoint user
buckets, seven days of page views, per-day and overall lifts for
PV-CTR / PV-CVR / Top-5 PV-CVR with 95% significance flags.

Reproduction note (see ``EXPERIMENTS.md`` for the full analysis): in a
fully-specified synthetic world the conversion-per-impression objective
is optimally served by the click-conditional estimator, so the paper's
positive DCMT lift does *not* emerge here even though the offline
Table IV gains and the Fig. 7 calibration story do.  The harness
reports whatever the simulator measures; the mechanism behind the
discrepancy is itself a reproduction finding.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.data.synthetic import SyntheticScenario
from repro.experiments.configs import ONLINE_MODELS, ExperimentConfig
from repro.experiments.tables import render_table
from repro.models.base import MultiTaskModel
from repro.models.registry import build_model
from repro.simulation.ab_test import ABTest, ABTestConfig, ABTestResult, METRICS
from repro.training import fit_model
from repro.utils.logging import get_logger

logger = get_logger("experiments.table5")


@dataclass
class Table5Result:
    ab_result: ABTestResult
    days: int
    runtime_seconds: float = 0.0

    def render(self) -> str:
        sections = []
        buckets = [b for b in self.ab_result.days if b != self.ab_result.base_bucket]
        for metric in METRICS:
            rows = []
            for bucket in buckets:
                row: List[object] = [metric, bucket]
                for day in range(self.days):
                    lift = self.ab_result.daily_lift(bucket, metric, day)
                    marker = "*" if lift.significant_95 else ""
                    row.append(f"{lift.lift * 100:+.2f}%{marker}")
                overall = self.ab_result.overall_lift(bucket, metric)
                marker = "*" if overall.significant_95 else ""
                row.append(f"{overall.lift * 100:+.2f}%{marker}")
                rows.append(row)
            headers = (
                ["Metric", "Model"]
                + [f"Day{d + 1}" for d in range(self.days)]
                + ["Overall"]
            )
            sections.append(render_table(headers, rows))
        title = (
            "Table V -- online A/B vs base model MMOE "
            "(* = significant at 95%)"
        )
        return title + "\n\n" + "\n\n".join(sections)


def train_online_models(
    config: ExperimentConfig,
    scenario: SyntheticScenario,
    model_names: Sequence[str] = ONLINE_MODELS,
) -> Dict[str, MultiTaskModel]:
    """Train the four online bucket models on the industrial scenario."""
    train, _ = scenario.generate()
    models: Dict[str, MultiTaskModel] = {}
    for name in model_names:
        seed = config.seeds[0]
        model = build_model(name, train.schema, config.model_config(seed))
        fit_model(model, train, config.train_config(seed))
        models[name] = model
        logger.info("trained online bucket %s", name)
    return models


def run_table5(
    config: Optional[ExperimentConfig] = None,
    days: int = 7,
    page_views_per_day: Optional[int] = None,
    models: Optional[Dict[str, MultiTaskModel]] = None,
    scenario: Optional[SyntheticScenario] = None,
) -> Table5Result:
    """Train the buckets (unless given) and run the 7-day experiment."""
    config = config or ExperimentConfig()
    start = time.time()
    if scenario is None:
        scenario = SyntheticScenario(config.scenario("alipay_search"))
    if models is None:
        models = train_online_models(config, scenario)
    if page_views_per_day is None:
        page_views_per_day = max(200, int(800 * config.scale))
    ab = ABTest(
        models,
        scenario,
        base_bucket="mmoe",
        config=ABTestConfig(
            days=days,
            page_views_per_day=page_views_per_day,
            candidates_per_page=30,
            page_size=10,
            seed=config.seeds[0],
        ),
    )
    result = ab.run()
    return Table5Result(
        ab_result=result, days=days, runtime_seconds=time.time() - start
    )
