"""Shared experiment configuration.

``ExperimentConfig`` bundles the tuned model/training hyper-parameters
used across all paper reproductions, plus a single ``scale`` knob that
shrinks workloads for the pytest-benchmark suite (dataset sizes scale
linearly; epochs and seeds are reduced below scale 1.0).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Tuple

from repro.data.scenarios import scenario_config
from repro.data.synthetic import ScenarioConfig
from repro.models.base import ModelConfig
from repro.training.config import TrainConfig

#: The datasets of Table IV (public offline benchmarks).
OFFLINE_DATASETS = ("ali_ccp", "ae_es", "ae_fr", "ae_nl", "ae_us")

#: The model columns of Table IV, in paper order.
TABLE4_MODELS = (
    "esmm",
    "cross_stitch",
    "mmoe",
    "ple",
    "aitm",
    "escm2_ipw",
    "escm2_dr",
    "dcmt_pd",
    "dcmt_cf",
    "dcmt",
)

#: Baseline columns (everything that is not a DCMT variant).
BASELINE_MODELS = TABLE4_MODELS[:7]

#: Related-work models beyond Table III (extended comparisons).
EXTENDED_MODELS = ("naive", "esm2", "multi_ipw", "multi_dr")

#: The online buckets of Table V.
ONLINE_MODELS = ("mmoe", "escm2_ipw", "escm2_dr", "dcmt")


@dataclass(frozen=True)
class ExperimentConfig:
    """Tuned defaults for all paper experiments.

    ``scale`` in (0, 1] shrinks dataset sizes (and with them run time)
    proportionally; the benchmark suite uses ~0.25, the CLI defaults to
    1.0.  Seeds: the paper averages 5 repeats; we default to 3.
    """

    scale: float = 1.0
    seeds: Tuple[int, ...] = (0, 1, 2)
    embedding_dim: int = 8
    hidden_sizes: Tuple[int, ...] = (32, 16)
    epochs: int = 8
    batch_size: int = 1024
    learning_rate: float = 0.003
    weight_decay: float = 1e-4

    def __post_init__(self) -> None:
        if not 0.0 < self.scale <= 1.0:
            raise ValueError(f"scale must be in (0, 1], got {self.scale}")
        if not self.seeds:
            raise ValueError("need at least one seed")

    def with_overrides(self, **kwargs) -> "ExperimentConfig":
        return replace(self, **kwargs)

    # ------------------------------------------------------------------
    def model_config(self, seed: int) -> ModelConfig:
        return ModelConfig(
            embedding_dim=self.embedding_dim,
            hidden_sizes=self.hidden_sizes,
            seed=seed,
        )

    def train_config(self, seed: int) -> TrainConfig:
        return TrainConfig(
            epochs=self.epochs,
            batch_size=self.batch_size,
            learning_rate=self.learning_rate,
            weight_decay=self.weight_decay,
            seed=seed,
        )

    def scenario(self, name: str, **extra) -> ScenarioConfig:
        """Scenario preset with sizes scaled by ``self.scale``."""
        base = scenario_config(name)
        overrides: Dict[str, object] = dict(extra)
        if self.scale < 1.0:
            overrides.setdefault(
                "n_train", max(4000, int(base.n_train * self.scale))
            )
            overrides.setdefault(
                "n_test", max(2000, int(base.n_test * self.scale))
            )
        return base.with_overrides(**overrides) if overrides else base
