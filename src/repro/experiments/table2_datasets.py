"""Table II: experimental dataset statistics.

Generates every scenario preset and reports the statistics the paper
tabulates (#users, #items, #exposures, #clicks, #conversions per
split), side by side with the paper's raw numbers so the scale
substitution is visible at a glance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.data.scenarios import PAPER_TABLE2, SCENARIO_PRESETS
from repro.data.stats import DatasetStatistics, dataset_statistics, selection_bias_summary
from repro.data.synthetic import SyntheticScenario
from repro.experiments.configs import ExperimentConfig
from repro.experiments.tables import render_table


@dataclass
class Table2Row:
    dataset: str
    split: str
    stats: DatasetStatistics
    bias: Dict[str, float]


@dataclass
class Table2Result:
    rows: List[Table2Row]

    def render(self) -> str:
        headers = [
            "Dataset",
            "Split",
            "#User",
            "#Item",
            "#Exposure",
            "#Click",
            "#Conversion",
            "CTR",
            "CVR|click",
            "CVR(O)/CVR(D)",
            "Paper #Exposure (train)",
        ]
        table_rows = []
        for row in self.rows:
            s = row.stats
            paper = PAPER_TABLE2.get(row.dataset, {})
            table_rows.append(
                [
                    row.dataset,
                    row.split,
                    s.n_users_seen,
                    s.n_items_seen,
                    s.n_exposures,
                    s.n_clicks,
                    s.n_conversions,
                    s.ctr,
                    s.cvr_given_click,
                    row.bias["bias_ratio"],
                    paper.get("exposures", "-") if row.split == "train" else "",
                ]
            )
        return render_table(
            headers,
            table_rows,
            title="Table II -- dataset statistics (reduced-scale synthetic vs paper)",
        )


def run_table2(
    config: Optional[ExperimentConfig] = None,
    datasets: Optional[Sequence[str]] = None,
) -> Table2Result:
    """Generate all presets and collect Table II statistics."""
    config = config or ExperimentConfig()
    names = list(datasets) if datasets else sorted(SCENARIO_PRESETS)
    rows: List[Table2Row] = []
    for name in names:
        scenario = SyntheticScenario(config.scenario(name))
        train, test = scenario.generate()
        for split, dataset in (("train", train), ("test", test)):
            rows.append(
                Table2Row(
                    dataset=name,
                    split=split,
                    stats=dataset_statistics(dataset),
                    bias=selection_bias_summary(dataset),
                )
            )
    return Table2Result(rows=rows)
