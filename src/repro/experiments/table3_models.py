"""Table III: model inventory (structure and main ideas).

Rendered straight from the model registry, plus the per-model trainable
parameter counts under the shared experiment configuration -- a useful
sanity check that the comparison is capacity-fair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.data.scenarios import scenario_config
from repro.data.synthetic import SyntheticScenario
from repro.experiments.configs import ExperimentConfig
from repro.experiments.tables import render_table
from repro.models.registry import MODEL_REGISTRY, build_model


@dataclass
class Table3Result:
    rows: List[List[str]]

    def render(self) -> str:
        return render_table(
            ["Model", "Group", "Structure", "Main idea", "#Params (ae_es)"],
            self.rows,
            title="Table III -- baselines and our methods",
        )


def run_table3(config: Optional[ExperimentConfig] = None) -> Table3Result:
    """Render the registry with parameter counts on the AE-ES schema."""
    config = config or ExperimentConfig()
    scenario = SyntheticScenario(
        scenario_config("ae_es", n_train=1000, n_test=500)
    )
    rows = []
    for name, info in MODEL_REGISTRY.items():
        model = build_model(name, scenario.schema, config.model_config(seed=0))
        rows.append(
            [name, info.group, info.structure, info.main_idea, str(model.num_parameters())]
        )
    rows.sort(key=lambda r: (r[1], r[0]))
    return Table3Result(rows=rows)
