"""Dependency-free SVG chart generation for the figure reproductions.

matplotlib is not available offline, so figures are emitted as
hand-written SVG strings: a line chart for the Fig. 8 sweeps and a
histogram for the Fig. 7 prediction distributions.  The output is
deliberately plain (one series per colour, labelled axes) and valid
XML, asserted in the test-suite.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence
from xml.sax.saxutils import escape

import numpy as np

#: Default canvas size; margins leave room for axis labels.
WIDTH, HEIGHT = 640, 400
MARGIN_LEFT, MARGIN_RIGHT = 70, 20
MARGIN_TOP, MARGIN_BOTTOM = 40, 50

PALETTE = ("#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b")


def line_chart(
    series: Dict[str, Sequence[float]],
    x_values: Sequence[float],
    title: str = "",
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Multi-series line chart; x positions are equally spaced by index
    (categorical x axis -- right for hyper-parameter sweeps)."""
    if not series:
        raise ValueError("need at least one series")
    n = len(x_values)
    for name, ys in series.items():
        if len(ys) != n:
            raise ValueError(f"series {name!r} has {len(ys)} points, expected {n}")
    all_y = np.concatenate([np.asarray(list(ys), dtype=float) for ys in series.values()])
    y_min, y_max = float(all_y.min()), float(all_y.max())
    if y_max == y_min:
        y_min, y_max = y_min - 0.5, y_max + 0.5
    pad = 0.08 * (y_max - y_min)
    y_min, y_max = y_min - pad, y_max + pad

    plot_w = WIDTH - MARGIN_LEFT - MARGIN_RIGHT
    plot_h = HEIGHT - MARGIN_TOP - MARGIN_BOTTOM

    def sx(i: int) -> float:
        return MARGIN_LEFT + (plot_w * i / max(n - 1, 1))

    def sy(y: float) -> float:
        return MARGIN_TOP + plot_h * (1.0 - (y - y_min) / (y_max - y_min))

    parts: List[str] = [_svg_open(), _title(title), _axes()]
    # y ticks
    for tick in np.linspace(y_min, y_max, 5):
        y = sy(float(tick))
        parts.append(
            f'<line x1="{MARGIN_LEFT - 4}" y1="{y:.1f}" x2="{MARGIN_LEFT}" '
            f'y2="{y:.1f}" stroke="#333"/>'
            f'<text x="{MARGIN_LEFT - 8}" y="{y + 4:.1f}" text-anchor="end" '
            f'font-size="11">{tick:.3f}</text>'
        )
    # x ticks
    for i, x in enumerate(x_values):
        parts.append(
            f'<text x="{sx(i):.1f}" y="{HEIGHT - MARGIN_BOTTOM + 18}" '
            f'text-anchor="middle" font-size="11">{escape(str(x))}</text>'
        )
    # series
    for idx, (name, ys) in enumerate(series.items()):
        color = PALETTE[idx % len(PALETTE)]
        points = " ".join(
            f"{sx(i):.1f},{sy(float(y)):.1f}" for i, y in enumerate(ys)
        )
        parts.append(
            f'<polyline fill="none" stroke="{color}" stroke-width="2" '
            f'points="{points}"/>'
        )
        for i, y in enumerate(ys):
            parts.append(
                f'<circle cx="{sx(i):.1f}" cy="{sy(float(y)):.1f}" r="3" '
                f'fill="{color}"/>'
            )
        parts.append(
            f'<text x="{WIDTH - MARGIN_RIGHT - 6}" '
            f'y="{MARGIN_TOP + 16 * (idx + 1)}" text-anchor="end" '
            f'font-size="12" fill="{color}">{escape(name)}</text>'
        )
    parts.append(_axis_labels(x_label, y_label))
    parts.append("</svg>")
    return "\n".join(parts)


def histogram_chart(
    values: Sequence[float],
    n_bins: int = 20,
    title: str = "",
    x_label: str = "prediction",
    reference_lines: Optional[Dict[str, float]] = None,
) -> str:
    """Histogram over [0, 1] with optional labelled reference lines
    (the Fig. 7 posterior CVR markers)."""
    v = np.asarray(list(values), dtype=float)
    counts, edges = np.histogram(v, bins=n_bins, range=(0.0, 1.0))
    peak = float(counts.max() or 1)
    plot_w = WIDTH - MARGIN_LEFT - MARGIN_RIGHT
    plot_h = HEIGHT - MARGIN_TOP - MARGIN_BOTTOM
    bar_w = plot_w / n_bins

    parts: List[str] = [_svg_open(), _title(title), _axes()]
    for i, count in enumerate(counts):
        h = plot_h * count / peak
        x = MARGIN_LEFT + i * bar_w
        y = MARGIN_TOP + plot_h - h
        parts.append(
            f'<rect x="{x:.1f}" y="{y:.1f}" width="{bar_w - 1:.1f}" '
            f'height="{h:.1f}" fill="#1f77b4" opacity="0.8"/>'
        )
    for i in range(0, n_bins + 1, max(n_bins // 5, 1)):
        x = MARGIN_LEFT + i * bar_w
        parts.append(
            f'<text x="{x:.1f}" y="{HEIGHT - MARGIN_BOTTOM + 18}" '
            f'text-anchor="middle" font-size="11">{edges[i]:.2f}</text>'
        )
    for idx, (name, value) in enumerate((reference_lines or {}).items()):
        x = MARGIN_LEFT + plot_w * float(np.clip(value, 0.0, 1.0))
        color = PALETTE[(idx + 1) % len(PALETTE)]
        parts.append(
            f'<line x1="{x:.1f}" y1="{MARGIN_TOP}" x2="{x:.1f}" '
            f'y2="{HEIGHT - MARGIN_BOTTOM}" stroke="{color}" '
            f'stroke-dasharray="4 3" stroke-width="2"/>'
            f'<text x="{x + 4:.1f}" y="{MARGIN_TOP + 14 * (idx + 1)}" '
            f'font-size="11" fill="{color}">{escape(name)}={value:.3f}</text>'
        )
    parts.append(_axis_labels(x_label, "count"))
    parts.append("</svg>")
    return "\n".join(parts)


def save_svg(svg: str, path: "Path | str") -> Path:
    """Write an SVG string to disk; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(svg)
    return path


def _svg_open() -> str:
    return (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" '
        f'height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}" '
        f'font-family="sans-serif">'
        f'<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>'
    )


def _title(title: str) -> str:
    if not title:
        return ""
    return (
        f'<text x="{WIDTH / 2}" y="22" text-anchor="middle" '
        f'font-size="15" font-weight="bold">{escape(title)}</text>'
    )


def _axes() -> str:
    return (
        f'<line x1="{MARGIN_LEFT}" y1="{MARGIN_TOP}" x2="{MARGIN_LEFT}" '
        f'y2="{HEIGHT - MARGIN_BOTTOM}" stroke="#333"/>'
        f'<line x1="{MARGIN_LEFT}" y1="{HEIGHT - MARGIN_BOTTOM}" '
        f'x2="{WIDTH - MARGIN_RIGHT}" y2="{HEIGHT - MARGIN_BOTTOM}" stroke="#333"/>'
    )


def _axis_labels(x_label: str, y_label: str) -> str:
    parts = []
    if x_label:
        parts.append(
            f'<text x="{WIDTH / 2}" y="{HEIGHT - 10}" text-anchor="middle" '
            f'font-size="13">{escape(x_label)}</text>'
        )
    if y_label:
        parts.append(
            f'<text x="18" y="{HEIGHT / 2}" text-anchor="middle" '
            f'font-size="13" transform="rotate(-90 18 {HEIGHT / 2})">'
            f"{escape(y_label)}</text>"
        )
    return "".join(parts)
