"""Command-line entry point: ``dcmt-experiments <artifact>``.

Regenerates any paper table/figure from the terminal::

    dcmt-experiments table2
    dcmt-experiments table4 --scale 0.5 --seeds 0 1
    dcmt-experiments fig8c
    dcmt-experiments all --scale 0.25
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments.configs import ExperimentConfig
from repro.experiments.fig7_distribution import run_fig7
from repro.experiments.fig8_hyperparams import (
    run_fig8a_embedding_dim,
    run_fig8b_mlp_depth,
    run_fig8c_lambda1,
    run_fig8d_hard_constraint,
)
from repro.experiments.table2_datasets import run_table2
from repro.experiments.table3_models import run_table3
from repro.experiments.table4_offline import run_table4
from repro.experiments.table5_online import run_table5
from repro.utils.logging import enable_console_logging

ARTIFACTS = (
    "table2",
    "table3",
    "table4",
    "table5",
    "fig7",
    "fig8a",
    "fig8b",
    "fig8c",
    "fig8d",
    "report",
    "all",
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dcmt-experiments",
        description="Regenerate the DCMT paper's tables and figures.",
    )
    parser.add_argument("artifact", choices=ARTIFACTS)
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="workload scale in (0, 1]; shrinks dataset sizes",
    )
    parser.add_argument(
        "--seeds",
        type=int,
        nargs="+",
        default=[0, 1, 2],
        help="random seeds to average over",
    )
    parser.add_argument(
        "--epochs", type=int, default=8, help="training epochs per model"
    )
    parser.add_argument(
        "--svg-dir",
        type=str,
        default=None,
        help="also write figure artifacts (fig7/fig8*) as SVG files here",
    )
    parser.add_argument(
        "--out",
        type=str,
        default="report",
        help="output directory for the 'report' artifact",
    )
    parser.add_argument("--verbose", action="store_true")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.verbose:
        enable_console_logging()
    config = ExperimentConfig(
        scale=args.scale, seeds=tuple(args.seeds), epochs=args.epochs
    )
    if args.artifact == "report":
        from repro.experiments.report import generate_report

        result = generate_report(args.out, config)
        print(f"report written to {result.markdown_path}")
        return 0
    artifacts = (
        ["table2", "table3", "table4", "table5", "fig7", "fig8a", "fig8b", "fig8c", "fig8d"]
        if args.artifact == "all"
        else [args.artifact]
    )
    for artifact in artifacts:
        result = _run(artifact, config)
        print(result.render())
        print()
        if args.svg_dir:
            _write_svgs(artifact, result, args.svg_dir)
    return 0


def _write_svgs(artifact: str, result, svg_dir: str) -> None:
    """Write SVG files for artifacts that support them."""
    from repro.experiments.svg import save_svg

    if artifact.startswith("fig8") and hasattr(result, "to_svg"):
        path = save_svg(result.to_svg(), f"{svg_dir}/{artifact}.svg")
        print(f"wrote {path}")
    elif artifact == "fig7":
        for model in result.predictions:
            path = save_svg(
                result.to_svg(model), f"{svg_dir}/fig7_{model}.svg"
            )
            print(f"wrote {path}")


def _run(artifact: str, config: ExperimentConfig):
    if artifact == "table2":
        return run_table2(config)
    if artifact == "table3":
        return run_table3(config)
    if artifact == "table4":
        return run_table4(config)
    if artifact == "table5":
        return run_table5(config)
    if artifact == "fig7":
        return run_fig7(config)
    if artifact == "fig8a":
        return run_fig8a_embedding_dim(config)
    if artifact == "fig8b":
        return run_fig8b_mlp_depth(config)
    if artifact == "fig8c":
        return run_fig8c_lambda1(config)
    if artifact == "fig8d":
        return run_fig8d_hard_constraint(config)
    raise ValueError(f"unknown artifact {artifact!r}")


if __name__ == "__main__":
    sys.exit(main())
