"""Experiment harness: one module per paper table/figure.

Every module exposes a ``run_*`` function returning a result object
with the raw numbers and a ``render()`` method producing the ASCII
table/series, so benchmarks, the CLI (``dcmt-experiments``) and tests
share one code path.

| Paper artifact | Module |
|----------------|--------|
| Table II  (dataset statistics)       | :mod:`repro.experiments.table2_datasets` |
| Table III (model inventory)          | :mod:`repro.experiments.table3_models` |
| Table IV  (offline AUC comparison)   | :mod:`repro.experiments.table4_offline` |
| Table V   (online A/B test)          | :mod:`repro.experiments.table5_online` |
| Fig. 7    (CVR prediction dists)     | :mod:`repro.experiments.fig7_distribution` |
| Fig. 8    (hyper-parameter impact)   | :mod:`repro.experiments.fig8_hyperparams` |
"""

from repro.experiments.configs import ExperimentConfig
from repro.experiments.table2_datasets import run_table2
from repro.experiments.table3_models import run_table3
from repro.experiments.table4_offline import run_table4
from repro.experiments.table5_online import run_table5
from repro.experiments.fig7_distribution import run_fig7
from repro.experiments.fig8_hyperparams import (
    run_fig8a_embedding_dim,
    run_fig8b_mlp_depth,
    run_fig8c_lambda1,
    run_fig8d_hard_constraint,
)

__all__ = [
    "ExperimentConfig",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_table5",
    "run_fig7",
    "run_fig8a_embedding_dim",
    "run_fig8b_mlp_depth",
    "run_fig8c_lambda1",
    "run_fig8d_hard_constraint",
]
