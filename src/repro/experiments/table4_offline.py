"""Table IV: offline CVR / CTCVR AUC comparison.

For every public dataset preset and every model of Table III, trains
with the shared protocol and reports

* **CVR AUC** -- AUC of the post-click CVR prediction against observed
  conversion labels over the full test exposure set (the AliExpress
  benchmark protocol; computable on real logs);
* **CTCVR AUC** -- AUC of the click&conversion prediction, same labels;
* **CVR AUC (do)** -- an oracle-only diagnostic: AUC against potential
  outcome labels ``r(do(o=1))``, which only the synthetic world can
  provide.

The "improvement" row mirrors the paper: full DCMT vs the
best-performing baseline per dataset.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.synthetic import SyntheticScenario
from repro.experiments.configs import (
    BASELINE_MODELS,
    OFFLINE_DATASETS,
    TABLE4_MODELS,
    ExperimentConfig,
)
from repro.experiments.tables import render_table
from repro.metrics.ranking import auc
from repro.models.registry import build_model
from repro.training import fit_model
from repro.utils.logging import get_logger

logger = get_logger("experiments.table4")


@dataclass(frozen=True)
class CellResult:
    """Seed-averaged metrics for one (dataset, model) pair."""

    cvr_auc: float
    cvr_auc_std: float
    ctcvr_auc: float
    cvr_auc_do: Optional[float]


@dataclass
class Table4Result:
    datasets: List[str]
    models: List[str]
    cells: Dict[Tuple[str, str], CellResult]
    runtime_seconds: float = 0.0

    # ------------------------------------------------------------------
    def best_baseline(self, dataset: str) -> Tuple[str, float]:
        """Best-performing baseline by CVR AUC on one dataset."""
        candidates = [m for m in self.models if m in BASELINE_MODELS]
        best = max(candidates, key=lambda m: self.cells[(dataset, m)].cvr_auc)
        return best, self.cells[(dataset, best)].cvr_auc

    def improvement(self, dataset: str) -> float:
        """Relative CVR AUC improvement of full DCMT over the best baseline."""
        _, base = self.best_baseline(dataset)
        ours = self.cells[(dataset, "dcmt")].cvr_auc
        return (ours - base) / base

    def average_improvement(self) -> float:
        return float(np.mean([self.improvement(d) for d in self.datasets]))

    def dcmt_vs_variant(self, variant: str) -> float:
        """Average relative improvement of full DCMT over an ablation."""
        ratios = []
        for dataset in self.datasets:
            ours = self.cells[(dataset, "dcmt")].cvr_auc
            theirs = self.cells[(dataset, variant)].cvr_auc
            ratios.append((ours - theirs) / theirs)
        return float(np.mean(ratios))

    # ------------------------------------------------------------------
    def render(self, show_std: bool = False) -> str:
        headers = ["Dataset"] + [
            f"{m}.{k}" for m in self.models for k in ("CVR", "CTCVR")
        ]
        rows = []
        for dataset in self.datasets:
            row: List[object] = [dataset]
            for model in self.models:
                cell = self.cells[(dataset, model)]
                cvr = (
                    f"{cell.cvr_auc:.4f}±{cell.cvr_auc_std:.3f}"
                    if show_std
                    else cell.cvr_auc
                )
                row += [cvr, cell.ctcvr_auc]
            rows.append(row)
        main = render_table(
            headers,
            rows,
            title="Table IV -- offline AUC (CVR task / CTCVR task)",
        )
        extra_rows = []
        for dataset in self.datasets:
            best_name, best_value = self.best_baseline(dataset)
            extra_rows.append(
                [
                    dataset,
                    best_name,
                    best_value,
                    self.cells[(dataset, "dcmt")].cvr_auc,
                    f"{self.improvement(dataset) * 100:+.2f}%",
                ]
            )
        improvements = render_table(
            ["Dataset", "Best baseline", "Baseline CVR", "DCMT CVR", "Improvement"],
            extra_rows,
            title="Improvement (DCMT vs best-performing baselines)",
        )
        footer_lines = [
            f"Average improvement: {self.average_improvement() * 100:+.2f}% "
            f"(paper: +1.07%)"
        ]
        ablations = []
        if "dcmt_pd" in self.models:
            ablations.append(
                f"DCMT vs DCMT_PD: {self.dcmt_vs_variant('dcmt_pd') * 100:+.2f}% "
                f"(paper: +2.89%)"
            )
        if "dcmt_cf" in self.models:
            ablations.append(
                f"DCMT vs DCMT_CF: {self.dcmt_vs_variant('dcmt_cf') * 100:+.2f}% "
                f"(paper: +1.91%)"
            )
        if ablations:
            footer_lines.append(" | ".join(ablations))
        return "\n\n".join([main, improvements, "\n".join(footer_lines)])

    def render_do_diagnostic(self) -> str:
        """Oracle-only panel: CVR AUC against potential-outcome labels.

        Only the synthetic worlds can produce this table (real logs
        have no ``r(do(o=1))``); it measures entire-space ranking of
        the *causal* quantity, cf. the metric discussion in
        EXPERIMENTS.md.
        """
        headers = ["Dataset"] + list(self.models)
        rows = []
        for dataset in self.datasets:
            row: List[object] = [dataset]
            for model in self.models:
                value = self.cells[(dataset, model)].cvr_auc_do
                row.append(value if value is not None else "-")
            rows.append(row)
        return render_table(
            headers,
            rows,
            title="Oracle diagnostic -- CVR AUC vs potential outcomes r(do(o=1))",
        )


def run_table4(
    config: Optional[ExperimentConfig] = None,
    datasets: Optional[Sequence[str]] = None,
    models: Optional[Sequence[str]] = None,
) -> Table4Result:
    """Train and evaluate the full model zoo on every offline dataset."""
    config = config or ExperimentConfig()
    dataset_names = list(datasets) if datasets else list(OFFLINE_DATASETS)
    model_names = list(models) if models else list(TABLE4_MODELS)
    if "dcmt" not in model_names:
        raise ValueError("Table IV requires the full 'dcmt' model")

    start = time.time()
    cells: Dict[Tuple[str, str], CellResult] = {}
    for dataset_name in dataset_names:
        scenario = SyntheticScenario(config.scenario(dataset_name))
        train, test = scenario.generate()
        test_batch = test.full_batch()
        for model_name in model_names:
            cvr_scores, ctcvr_scores, do_scores = [], [], []
            for seed in config.seeds:
                model = build_model(
                    model_name, train.schema, config.model_config(seed)
                )
                fit_model(model, train, config.train_config(seed))
                preds = model.predict(test_batch)
                cvr_scores.append(auc(test.conversions, preds.cvr))
                ctcvr_scores.append(auc(test.conversions, preds.ctcvr))
                if test.has_oracle:
                    do_scores.append(auc(test.oracle_conversion, preds.cvr))
            cells[(dataset_name, model_name)] = CellResult(
                cvr_auc=float(np.mean(cvr_scores)),
                cvr_auc_std=float(np.std(cvr_scores)),
                ctcvr_auc=float(np.mean(ctcvr_scores)),
                cvr_auc_do=float(np.mean(do_scores)) if do_scores else None,
            )
            logger.info(
                "%s/%s: CVR AUC %.4f",
                dataset_name,
                model_name,
                cells[(dataset_name, model_name)].cvr_auc,
            )
    return Table4Result(
        datasets=dataset_names,
        models=model_names,
        cells=cells,
        runtime_seconds=time.time() - start,
    )
