"""Fig. 8: impact of hyper-parameters on DCMT (AE-ES dataset).

Four panels, as in the paper:

* (a) CVR AUC vs feature embedding dimension;
* (b) CVR AUC vs MLP depth (best-performing structure per depth);
* (c) CVR AUC vs counterfactual regularizer weight ``lambda_1``,
  including the hard-constraint configuration;
* (d) factual vs counterfactual predictions of 100 random samples under
  the hard constraint -- the paper shows both collapse into narrow
  complementary value bands.

Note on the lambda axis: the paper's optimum is 0.001 under its
unnormalised loss; our SNIPS-normalised losses shift the equivalent
optimum to ~2 (the sweep shows the same rise-then-fall shape).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.dcmt import DCMT
from repro.data.synthetic import SyntheticScenario
from repro.experiments.configs import ExperimentConfig
from repro.experiments.tables import render_series, render_table
from repro.metrics.ranking import auc
from repro.training import fit_model
from repro.utils.logging import get_logger

logger = get_logger("experiments.fig8")

#: Best-performing structure per depth (panel b), scaled to this
#: implementation's tower widths (paper: [128], [64-64], [64-64-32], ...).
DEPTH_STRUCTURES: Dict[int, Tuple[int, ...]] = {
    1: (64,),
    2: (32, 32),
    3: (32, 32, 16),
    4: (32, 32, 16, 16),
    5: (32, 32, 16, 16, 8),
    6: (32, 32, 16, 16, 8, 8),
}


@dataclass
class SweepResult:
    """One Fig. 8 sweep: x values and seed-averaged CVR AUCs."""

    panel: str
    x_label: str
    xs: List[object]
    cvr_aucs: List[float]
    runtime_seconds: float = 0.0

    @property
    def best_x(self):
        return self.xs[int(np.argmax(self.cvr_aucs))]

    def render(self) -> str:
        return render_series(
            self.xs,
            self.cvr_aucs,
            x_label=self.x_label,
            y_label="CVR AUC",
            title=f"Fig. 8({self.panel}) -- impact of {self.x_label} (AE-ES)",
        )

    def to_svg(self) -> str:
        """The sweep as a standalone SVG line chart."""
        from repro.experiments.svg import line_chart

        return line_chart(
            {"DCMT": self.cvr_aucs},
            self.xs,
            title=f"Fig. 8({self.panel}) - impact of {self.x_label} (AE-ES)",
            x_label=self.x_label,
            y_label="CVR AUC",
        )


@dataclass
class HardConstraintResult:
    """Panel (d): prediction bands under the hard constraint."""

    factual: np.ndarray
    counterfactual: np.ndarray
    runtime_seconds: float = 0.0

    @property
    def factual_band(self) -> Tuple[float, float]:
        return float(self.factual.min()), float(self.factual.max())

    @property
    def counterfactual_band(self) -> Tuple[float, float]:
        return float(self.counterfactual.min()), float(self.counterfactual.max())

    @property
    def max_sum_violation(self) -> float:
        return float(np.abs(1.0 - (self.factual + self.counterfactual)).max())

    def render(self) -> str:
        f_lo, f_hi = self.factual_band
        c_lo, c_hi = self.counterfactual_band
        rows = [
            ["factual CVR", f_lo, f_hi, f_hi - f_lo],
            ["counterfactual CVR", c_lo, c_hi, c_hi - c_lo],
        ]
        return (
            render_table(
                ["Prediction", "Min", "Max", "Band width"],
                rows,
                title=(
                    "Fig. 8(d) -- hard constraint collapses predictions into "
                    "narrow bands (paper: [0.265,0.305] / [0.695,0.735])"
                ),
            )
            + f"\nmax |1 - (r + r*)| = {self.max_sum_violation:.2e}"
        )


# ----------------------------------------------------------------------
def _train_and_score(
    scenario: SyntheticScenario,
    config: ExperimentConfig,
    model_factory,
) -> float:
    train, test = scenario.generate()
    scores = []
    for seed in config.seeds:
        model = model_factory(train.schema, seed)
        fit_model(model, train, config.train_config(seed))
        preds = model.predict(test.full_batch())
        scores.append(auc(test.conversions, preds.cvr))
    return float(np.mean(scores))


def run_fig8a_embedding_dim(
    config: Optional[ExperimentConfig] = None,
    dims: Sequence[int] = (4, 8, 16, 32, 64),
) -> SweepResult:
    """Panel (a): embedding dimension sweep."""
    config = config or ExperimentConfig(seeds=(0,))
    start = time.time()
    scenario = SyntheticScenario(config.scenario("ae_es"))
    scores = []
    for dim in dims:
        sub = config.with_overrides(embedding_dim=dim)
        scores.append(
            _train_and_score(
                scenario,
                sub,
                lambda schema, seed, s=sub: DCMT(schema, s.model_config(seed)),
            )
        )
        logger.info("fig8a dim=%d auc=%.4f", dim, scores[-1])
    return SweepResult(
        panel="a",
        x_label="embedding dim",
        xs=list(dims),
        cvr_aucs=scores,
        runtime_seconds=time.time() - start,
    )


def run_fig8b_mlp_depth(
    config: Optional[ExperimentConfig] = None,
    depths: Sequence[int] = (1, 2, 3, 4, 5, 6),
) -> SweepResult:
    """Panel (b): MLP depth sweep (best structure per depth)."""
    config = config or ExperimentConfig(seeds=(0,))
    start = time.time()
    scenario = SyntheticScenario(config.scenario("ae_es"))
    scores = []
    for depth in depths:
        structure = DEPTH_STRUCTURES[depth]
        sub = config.with_overrides(hidden_sizes=structure)
        scores.append(
            _train_and_score(
                scenario,
                sub,
                lambda schema, seed, s=sub: DCMT(schema, s.model_config(seed)),
            )
        )
        logger.info("fig8b depth=%d auc=%.4f", depth, scores[-1])
    return SweepResult(
        panel="b",
        x_label="MLP depth",
        xs=list(depths),
        cvr_aucs=scores,
        runtime_seconds=time.time() - start,
    )


def run_fig8c_lambda1(
    config: Optional[ExperimentConfig] = None,
    lambdas: Sequence[float] = (0.002, 0.02, 0.2, 2.0, 8.0, 32.0),
    include_hard: bool = True,
) -> SweepResult:
    """Panel (c): counterfactual regularizer weight sweep (+ hard)."""
    config = config or ExperimentConfig(seeds=(0,))
    start = time.time()
    scenario = SyntheticScenario(config.scenario("ae_es"))
    xs: List[object] = []
    scores = []
    for lam in lambdas:
        score = _train_and_score(
            scenario,
            config,
            lambda schema, seed, l=lam: DCMT(
                schema, config.model_config(seed), lambda1=l
            ),
        )
        xs.append(lam)
        scores.append(score)
        logger.info("fig8c lambda=%.4g auc=%.4f", lam, score)
    if include_hard:
        score = _train_and_score(
            scenario,
            config,
            lambda schema, seed: DCMT(
                schema, config.model_config(seed), constraint="hard"
            ),
        )
        xs.append("hard")
        scores.append(score)
        logger.info("fig8c hard auc=%.4f", score)
    return SweepResult(
        panel="c",
        x_label="lambda_1",
        xs=xs,
        cvr_aucs=scores,
        runtime_seconds=time.time() - start,
    )


def run_fig8d_hard_constraint(
    config: Optional[ExperimentConfig] = None,
    n_samples: int = 100,
) -> HardConstraintResult:
    """Panel (d): prediction bands of 100 samples under the hard constraint."""
    config = config or ExperimentConfig(seeds=(0,))
    start = time.time()
    scenario = SyntheticScenario(config.scenario("ae_es"))
    train, test = scenario.generate()
    seed = config.seeds[0]
    model = DCMT(train.schema, config.model_config(seed), constraint="hard")
    fit_model(model, train, config.train_config(seed))
    rng = np.random.default_rng(seed)
    idx = rng.choice(len(test), size=min(n_samples, len(test)), replace=False)
    preds = model.predict(test.subset(idx).full_batch())
    return HardConstraintResult(
        factual=preds.cvr,
        counterfactual=preds.cvr_counterfactual,
        runtime_seconds=time.time() - start,
    )
