"""Fig. 7: online CVR prediction distributions over the infer space D.

Reuses the Table V machinery: the day-1 impression log of the A/B test
provides every bucket's CVR predictions over its served impression
space.  For each model we report the prediction histogram, the mean
prediction, and the reference posterior CVRs over ``D``, ``O`` and
``N`` -- the quantities the paper marks on the figure.

This is the part of the online experiment that reproduces cleanly:
ESCM2-IPW/DR mean predictions sit far above the posterior CVR over
``D`` (pulled toward the click space), while DCMT's mean lands next to
the posterior over ``D``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.experiments.configs import ExperimentConfig
from repro.experiments.table5_online import Table5Result, run_table5
from repro.experiments.tables import render_histogram, render_table
from repro.metrics.classification import prediction_summary


@dataclass
class Fig7Result:
    posterior_d: float
    posterior_o: float
    posterior_n: float
    summaries: Dict[str, Dict[str, float]]
    predictions: Dict[str, np.ndarray]
    runtime_seconds: float = 0.0

    def mean_prediction(self, model: str) -> float:
        return self.summaries[model]["mean"]

    def distance_to_posterior_d(self, model: str) -> float:
        """|mean prediction - posterior CVR over D| -- lower is better."""
        return abs(self.mean_prediction(model) - self.posterior_d)

    def render(self) -> str:
        parts: List[str] = [
            "Fig. 7 -- online CVR prediction distributions over D",
            f"posterior CVR:  D={self.posterior_d:.3f}  "
            f"O={self.posterior_o:.3f}  N={self.posterior_n:.3f} "
            f"(paper Alipay: D=0.130 O=0.760 N=0.0)",
        ]
        rows = [
            [
                model,
                summary["mean"],
                summary["median"],
                summary["p10"],
                summary["p90"],
                self.distance_to_posterior_d(model),
            ]
            for model, summary in self.summaries.items()
        ]
        parts.append(
            render_table(
                ["Model", "Mean", "Median", "P10", "P90", "|mean - posterior D|"],
                rows,
            )
        )
        for model, preds in self.predictions.items():
            parts.append(
                render_histogram(preds, title=f"-- {model} CVR predictions --")
            )
        return "\n\n".join(parts)

    def to_svg(self, model: str) -> str:
        """One model's prediction distribution as a standalone SVG."""
        from repro.experiments.svg import histogram_chart

        return histogram_chart(
            self.predictions[model],
            title=f"Fig. 7 - {model} CVR predictions over D",
            x_label="predicted CVR",
            reference_lines={
                "posterior D": self.posterior_d,
                "posterior O": self.posterior_o,
                "posterior N": self.posterior_n,
            },
        )


def run_fig7(
    config: Optional[ExperimentConfig] = None,
    table5: Optional[Table5Result] = None,
) -> Fig7Result:
    """Build Fig. 7 from (or by running) the Table V experiment."""
    config = config or ExperimentConfig()
    start = time.time()
    if table5 is None:
        table5 = run_table5(config, days=1)
    ab = table5.ab_result
    summaries = {
        model: prediction_summary(preds)
        for model, preds in ab.day1_cvr_predictions.items()
    }
    return Fig7Result(
        posterior_d=ab.posterior_cvr("D"),
        posterior_o=ab.posterior_cvr("O"),
        posterior_n=ab.posterior_cvr("N"),
        summaries=summaries,
        predictions=dict(ab.day1_cvr_predictions),
        runtime_seconds=time.time() - start,
    )
