"""ASCII table and sparkline rendering for experiment outputs."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def render_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Fixed-width ASCII table with a separator under the header."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    xs: Sequence[object], ys: Sequence[float], x_label: str, y_label: str, title: str = ""
) -> str:
    """A small two-column series with a unicode bar per value.

    Used for the Fig. 8 sweeps: readable in a terminal, diffable in CI.
    """
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    lines: List[str] = []
    if title:
        lines.append(title)
    lo, hi = min(ys), max(ys)
    span = (hi - lo) or 1.0
    for x, y in zip(xs, ys):
        bar = "#" * (1 + int(29 * (y - lo) / span))
        lines.append(f"{x_label}={_fmt(x):>10s}  {y_label}={y:.4f}  {bar}")
    return "\n".join(lines)


def render_histogram(
    values, n_bins: int = 20, title: str = "", width: int = 40
) -> str:
    """ASCII histogram over [0, 1] (Fig. 7 prediction distributions)."""
    import numpy as np

    v = np.asarray(values, dtype=float)
    counts, edges = np.histogram(v, bins=n_bins, range=(0.0, 1.0))
    peak = counts.max() or 1
    lines: List[str] = []
    if title:
        lines.append(title)
    for count, lo, hi in zip(counts, edges[:-1], edges[1:]):
        bar = "#" * int(width * count / peak)
        lines.append(f"[{lo:4.2f},{hi:4.2f})  {bar} {count}")
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.4f}"
    return str(cell)
