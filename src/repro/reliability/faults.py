"""Deterministic fault injection for training batches and fleets.

:class:`FaultInjector` corrupts :class:`~repro.data.dataset.Batch`
objects in the ways production pipelines actually fail: NaN-poisoned
dense features (upstream join bugs), dropped rows (log truncation),
zero-click batches (traffic segmentation gone wrong), and flipped
conversion labels (attribution delays).  Corruption is keyed by
``(seed, epoch, batch_index)`` through ``SeedSequence``, so a given run
corrupts exactly the same batches in exactly the same way every time --
chaos you can put in a regression test.

All mutators return *new* batches (inputs are never modified) and
preserve the dataset invariants: conversions and actions stay zero
outside the click space.

The second half of the module is the *fleet* fault vocabulary:
:class:`ReplicaFault` events (kill, slowdown, NaN predictions) placed
on a request-step timeline, and :func:`build_fleet_fault_schedule`,
which draws a schedule from a :class:`FleetFaultSpec` through the same
``SeedSequence`` discipline.  The schedule is pure data -- the
:class:`~repro.simulation.fleet.FleetChaosDrill` harness applies it to
a live :class:`~repro.simulation.fleet.ServingFleet`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from repro.data.dataset import Batch

#: Fleet fault kinds (the vocabulary of :class:`ReplicaFault`).
REPLICA_KILL = "kill"
REPLICA_SLOWDOWN = "slowdown"
REPLICA_NAN = "nan_predictions"
_REPLICA_FAULT_KINDS = (REPLICA_KILL, REPLICA_SLOWDOWN, REPLICA_NAN)

#: Trainer worker-pool fault kinds (the vocabulary of :class:`WorkerFault`).
WORKER_KILL = "worker_kill"
WORKER_HANG = "worker_hang"
WORKER_SLOW = "worker_slow"
_WORKER_FAULT_KINDS = (WORKER_KILL, WORKER_HANG, WORKER_SLOW)


@dataclass(frozen=True)
class FaultSpec:
    """Per-batch fault probabilities and intensities."""

    #: Probability a batch gets NaN-poisoned dense features.
    nan_feature_rate: float = 0.0
    #: Fraction of rows poisoned when the NaN fault fires.
    nan_fraction: float = 0.25
    #: Probability a batch loses rows.
    drop_row_rate: float = 0.0
    #: Fraction of rows dropped when the drop fault fires.
    drop_fraction: float = 0.25
    #: Probability a batch has all clicks (and conversions) zeroed.
    zero_click_rate: float = 0.0
    #: Probability a batch gets conversion labels flipped in O.
    label_flip_rate: float = 0.0
    #: Fraction of clicked rows flipped when the flip fault fires.
    flip_fraction: float = 0.25

    def __post_init__(self) -> None:
        for name in (
            "nan_feature_rate",
            "nan_fraction",
            "drop_row_rate",
            "drop_fraction",
            "zero_click_rate",
            "label_flip_rate",
            "flip_fraction",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")


@dataclass
class FaultRecord:
    """One applied fault, for test assertions and run forensics."""

    epoch: int
    batch: int
    kind: str
    detail: Dict[str, Any] = field(default_factory=dict)


def _clone(batch: Batch) -> Batch:
    return Batch(
        sparse={k: v.copy() for k, v in batch.sparse.items()},
        dense={k: v.copy() for k, v in batch.dense.items()},
        clicks=batch.clicks.copy(),
        conversions=batch.conversions.copy(),
        actions=None if batch.actions is None else batch.actions.copy(),
    )


class FaultInjector:
    """Seeded batch corruptor with a log of every applied fault."""

    def __init__(self, spec: FaultSpec, seed: int = 0) -> None:
        self.spec = spec
        self.seed = seed
        self.log: List[FaultRecord] = []

    # -- individual mutators (deterministic given the rng) -------------
    @staticmethod
    def nan_features(
        batch: Batch, fraction: float, rng: np.random.Generator
    ) -> Batch:
        """Poison a row subset of every dense feature with NaN."""
        out = _clone(batch)
        n = out.size
        k = max(1, int(round(fraction * n)))
        rows = rng.choice(n, size=min(k, n), replace=False)
        for key in out.dense:
            column = out.dense[key].astype(float, copy=True)
            column[rows] = np.nan
            out.dense[key] = column
        return out

    @staticmethod
    def drop_rows(
        batch: Batch, fraction: float, rng: np.random.Generator
    ) -> Batch:
        """Drop a row subset (keeps at least one row)."""
        n = batch.size
        k = min(max(1, int(round(fraction * n))), n - 1) if n > 1 else 0
        dropped = set(rng.choice(n, size=k, replace=False).tolist())
        keep = np.array([i for i in range(n) if i not in dropped], dtype=np.int64)
        return Batch(
            sparse={k_: v[keep] for k_, v in batch.sparse.items()},
            dense={k_: v[keep] for k_, v in batch.dense.items()},
            clicks=batch.clicks[keep],
            conversions=batch.conversions[keep],
            actions=None if batch.actions is None else batch.actions[keep],
        )

    @staticmethod
    def zero_clicks(batch: Batch) -> Batch:
        """Zero every click -- and, to keep the invariant, conversions."""
        out = _clone(batch)
        out.clicks[:] = 0
        out.conversions[:] = 0
        if out.actions is not None:
            out.actions[:] = 0
        return out

    @staticmethod
    def flip_labels(
        batch: Batch, fraction: float, rng: np.random.Generator
    ) -> Batch:
        """Flip conversion labels on a subset of *clicked* rows."""
        out = _clone(batch)
        clicked = np.flatnonzero(out.clicks == 1)
        if len(clicked) == 0:
            return out
        k = max(1, int(round(fraction * len(clicked))))
        rows = rng.choice(clicked, size=min(k, len(clicked)), replace=False)
        out.conversions[rows] = 1 - out.conversions[rows]
        return out

    # -- batch-position-keyed chaos ------------------------------------
    def _rng_for(self, epoch: int, index: int) -> np.random.Generator:
        return np.random.default_rng(
            np.random.SeedSequence([self.seed, epoch, index])
        )

    def corrupt(self, batch: Batch, epoch: int = 0, index: int = 0) -> Batch:
        """Apply the spec's faults to one batch, deterministically.

        The decision and the corruption both come from an rng derived
        from ``(seed, epoch, index)``, so resumed runs see identical
        faults without replaying earlier batches.
        """
        spec = self.spec
        rng = self._rng_for(epoch, index)
        out = batch
        if spec.drop_row_rate and rng.random() < spec.drop_row_rate:
            out = self.drop_rows(out, spec.drop_fraction, rng)
            self.log.append(FaultRecord(epoch, index, "drop_rows"))
        if spec.zero_click_rate and rng.random() < spec.zero_click_rate:
            out = self.zero_clicks(out)
            self.log.append(FaultRecord(epoch, index, "zero_clicks"))
        if spec.label_flip_rate and rng.random() < spec.label_flip_rate:
            out = self.flip_labels(out, spec.flip_fraction, rng)
            self.log.append(FaultRecord(epoch, index, "flip_labels"))
        if spec.nan_feature_rate and rng.random() < spec.nan_feature_rate:
            out = self.nan_features(out, spec.nan_fraction, rng)
            self.log.append(FaultRecord(epoch, index, "nan_features"))
        return out


# ----------------------------------------------------------------------
# Fleet faults: replica-kill / slowdown / NaN-prediction events on a
# seeded request-step timeline.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ReplicaFault:
    """One fault window against one replica of a serving fleet."""

    #: ``kill`` (replica drops out of the fleet), ``slowdown`` (every
    #: scoring call costs extra injected-clock latency), or
    #: ``nan_predictions`` (the replica's primary scorer returns NaN).
    kind: str
    #: Index of the afflicted replica.
    replica: int
    #: Request step (0-based) at which the fault begins.
    start: int
    #: Fault length in request steps; ``None`` means permanent (the
    #: default for ``kill`` -- a dead replica stays dead unless the
    #: drill revives it explicitly).
    duration: Optional[int] = None
    #: Extra seconds per scoring call while a ``slowdown`` is active.
    latency_s: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in _REPLICA_FAULT_KINDS:
            raise ValueError(
                f"kind must be one of {_REPLICA_FAULT_KINDS}, got {self.kind!r}"
            )
        if self.replica < 0:
            raise ValueError(f"replica must be >= 0, got {self.replica}")
        if self.start < 0:
            raise ValueError(f"start must be >= 0, got {self.start}")
        if self.duration is not None and self.duration < 1:
            raise ValueError(
                f"duration must be >= 1 or None, got {self.duration}"
            )
        if self.latency_s < 0:
            raise ValueError(f"latency_s must be >= 0, got {self.latency_s}")
        if self.kind == REPLICA_SLOWDOWN and self.latency_s == 0:
            raise ValueError("a slowdown fault needs latency_s > 0")

    def active(self, step: int) -> bool:
        """Is the fault in force at request ``step``?"""
        if step < self.start:
            return False
        return self.duration is None or step < self.start + self.duration


@dataclass(frozen=True)
class FleetFaultSpec:
    """How many faults of each kind a seeded schedule should contain."""

    #: Permanent replica kills (at most one per replica).
    n_kills: int = 1
    #: Slowdown windows.
    n_slowdowns: int = 0
    #: Injected-clock latency per scoring call during a slowdown.
    slowdown_latency_s: float = 0.05
    #: Length of each slowdown window, in request steps.
    slowdown_duration: int = 20
    #: NaN-prediction bursts.
    n_nan_bursts: int = 0
    #: Length of each NaN burst, in request steps.
    nan_duration: int = 10

    def __post_init__(self) -> None:
        for name in ("n_kills", "n_slowdowns", "n_nan_bursts"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0, got {getattr(self, name)}")
        if self.slowdown_latency_s <= 0:
            raise ValueError(
                f"slowdown_latency_s must be > 0, got {self.slowdown_latency_s}"
            )
        if self.slowdown_duration < 1 or self.nan_duration < 1:
            raise ValueError("fault durations must be >= 1 step")


def build_fleet_fault_schedule(
    spec: FleetFaultSpec,
    n_replicas: int,
    n_steps: int,
    seed: int = 0,
) -> List[ReplicaFault]:
    """Draw a deterministic fault schedule for one drill run.

    Placement comes from ``SeedSequence([seed])`` exactly like
    :class:`FaultInjector`, so the same ``(spec, n_replicas, n_steps,
    seed)`` always yields the same schedule.  Kills land on distinct
    replicas (a drill that kills the same replica twice proves
    nothing), and every fault starts inside the middle 80% of the run
    so the transcript shows both a clean lead-in and the aftermath.
    """
    if n_replicas < 1:
        raise ValueError(f"n_replicas must be >= 1, got {n_replicas}")
    if n_steps < 1:
        raise ValueError(f"n_steps must be >= 1, got {n_steps}")
    if spec.n_kills > n_replicas:
        raise ValueError(
            f"cannot kill {spec.n_kills} of {n_replicas} replicas"
        )
    rng = np.random.default_rng(np.random.SeedSequence([seed, n_replicas, n_steps]))
    lo, hi = max(1, n_steps // 10), max(2, (9 * n_steps) // 10)
    faults: List[ReplicaFault] = []
    kill_targets = rng.choice(n_replicas, size=spec.n_kills, replace=False)
    for target in kill_targets:
        faults.append(
            ReplicaFault(
                kind=REPLICA_KILL,
                replica=int(target),
                start=int(rng.integers(lo, hi)),
            )
        )
    for _ in range(spec.n_slowdowns):
        faults.append(
            ReplicaFault(
                kind=REPLICA_SLOWDOWN,
                replica=int(rng.integers(0, n_replicas)),
                start=int(rng.integers(lo, hi)),
                duration=spec.slowdown_duration,
                latency_s=spec.slowdown_latency_s,
            )
        )
    for _ in range(spec.n_nan_bursts):
        faults.append(
            ReplicaFault(
                kind=REPLICA_NAN,
                replica=int(rng.integers(0, n_replicas)),
                start=int(rng.integers(lo, hi)),
                duration=spec.nan_duration,
            )
        )
    faults.sort(key=lambda f: (f.start, f.replica, f.kind))
    return faults


# ----------------------------------------------------------------------
# Trainer worker faults: SIGKILL / hang / slow-worker events on a
# seeded dispatch-step timeline, applied by the TrainerChaosDrill.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class WorkerFault:
    """One fault against one worker of a supervised training pool."""

    #: ``worker_kill`` (the supervisor SIGKILLs the worker process at
    #: ``start``), ``worker_hang`` (the worker sleeps indefinitely
    #: instead of computing its shard), or ``worker_slow`` (each shard
    #: costs ``latency_s`` extra wall-clock while active).
    kind: str
    #: Stable slot index of the afflicted worker (0-based, assigned at
    #: pool spawn; slots survive worker loss so schedules stay
    #: addressable).
    worker: int
    #: Global dispatch step (0-based optimizer-step attempts) at which
    #: the fault begins.
    start: int
    #: Fault length in dispatch steps; ``None`` means permanent (the
    #: default for kills and hangs -- a hung worker does not un-hang).
    duration: Optional[int] = None
    #: Extra seconds per shard while a ``worker_slow`` fault is active.
    latency_s: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in _WORKER_FAULT_KINDS:
            raise ValueError(
                f"kind must be one of {_WORKER_FAULT_KINDS}, got {self.kind!r}"
            )
        if self.worker < 0:
            raise ValueError(f"worker must be >= 0, got {self.worker}")
        if self.start < 0:
            raise ValueError(f"start must be >= 0, got {self.start}")
        if self.duration is not None and self.duration < 1:
            raise ValueError(
                f"duration must be >= 1 or None, got {self.duration}"
            )
        if self.latency_s < 0:
            raise ValueError(f"latency_s must be >= 0, got {self.latency_s}")
        if self.kind == WORKER_SLOW and self.latency_s == 0:
            raise ValueError("a worker_slow fault needs latency_s > 0")

    def active(self, step: int) -> bool:
        """Is the fault in force at dispatch ``step``?"""
        if step < self.start:
            return False
        return self.duration is None or step < self.start + self.duration


@dataclass(frozen=True)
class TrainerFaultSpec:
    """How many worker faults of each kind a seeded schedule contains."""

    #: Permanent SIGKILLs (at most one per worker).
    n_kills: int = 1
    #: Permanent hangs (distinct workers, never on a killed worker --
    #: a fault that can never be observed proves nothing).
    n_hangs: int = 0
    #: Slow-worker windows.
    n_slow: int = 0
    #: Extra seconds per shard during a slow window.
    slow_latency_s: float = 0.05
    #: Length of each slow window, in dispatch steps.
    slow_duration: int = 5

    def __post_init__(self) -> None:
        for name in ("n_kills", "n_hangs", "n_slow"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0, got {getattr(self, name)}")
        if self.slow_latency_s <= 0:
            raise ValueError(
                f"slow_latency_s must be > 0, got {self.slow_latency_s}"
            )
        if self.slow_duration < 1:
            raise ValueError(
                f"slow_duration must be >= 1, got {self.slow_duration}"
            )


def build_trainer_fault_schedule(
    spec: TrainerFaultSpec,
    n_workers: int,
    n_steps: int,
    seed: int = 0,
) -> List[WorkerFault]:
    """Draw a deterministic worker-fault schedule for one drill run.

    Mirrors :func:`build_fleet_fault_schedule`: placement comes from
    ``SeedSequence([seed, n_workers, n_steps])``, kills and hangs land
    on distinct workers (and never stack -- a killed worker cannot also
    hang), and every fault starts inside the middle 80% of the run so
    the transcript shows a clean lead-in and the aftermath.
    """
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    if n_steps < 1:
        raise ValueError(f"n_steps must be >= 1, got {n_steps}")
    if spec.n_kills + spec.n_hangs > n_workers:
        raise ValueError(
            f"cannot place {spec.n_kills} kills + {spec.n_hangs} hangs "
            f"on {n_workers} workers"
        )
    rng = np.random.default_rng(
        np.random.SeedSequence([seed, n_workers, n_steps])
    )
    lo, hi = max(1, n_steps // 10), max(2, (9 * n_steps) // 10)
    faults: List[WorkerFault] = []
    targets = rng.choice(
        n_workers, size=spec.n_kills + spec.n_hangs, replace=False
    )
    for target in targets[: spec.n_kills]:
        faults.append(
            WorkerFault(
                kind=WORKER_KILL,
                worker=int(target),
                start=int(rng.integers(lo, hi)),
            )
        )
    for target in targets[spec.n_kills :]:
        faults.append(
            WorkerFault(
                kind=WORKER_HANG,
                worker=int(target),
                start=int(rng.integers(lo, hi)),
            )
        )
    for _ in range(spec.n_slow):
        faults.append(
            WorkerFault(
                kind=WORKER_SLOW,
                worker=int(rng.integers(0, n_workers)),
                start=int(rng.integers(lo, hi)),
                duration=spec.slow_duration,
                latency_s=spec.slow_latency_s,
            )
        )
    faults.sort(key=lambda f: (f.start, f.worker, f.kind))
    return faults
