"""Deadlines and retry backoff, shared by serving and training.

These helpers used to live inline in :mod:`repro.simulation.serving`
(the deadline-aware retry chain) and :mod:`repro.simulation.fleet` (the
seeded-jitter hedge pause).  The supervised trainer worker pool
(:mod:`repro.training.parallel`) needs exactly the same machinery for
per-dispatch deadlines and straggler re-dispatch backoff, so the three
call sites now share one vocabulary:

* :class:`Deadline` -- a latency budget with an injectable clock,
  created where the work is admitted and propagated through every
  retry so a slow first attempt cannot spend the whole budget;
* :func:`exponential_backoff` -- the classic ``base * multiplier**n``
  retry pause used by the ranking service's primary-scorer retries;
* :func:`jittered_backoff` -- ``base * (1 + jitter * u)`` where ``u``
  is a caller-supplied uniform draw, used by fleet hedges and worker
  re-dispatch so same-seed runs reproduce the same pause schedule bit
  for bit;
* :func:`cap_to_deadline` -- clamps any computed pause so sleeping
  never outlives the budget.
"""

from __future__ import annotations

from typing import Callable, Optional

__all__ = [
    "Deadline",
    "cap_to_deadline",
    "exponential_backoff",
    "jittered_backoff",
]


class Deadline:
    """Per-request latency budget with an injectable clock.

    ``None`` budget means "no deadline" -- every check reports
    unexpired.  The deadline is created when the request is admitted
    and propagated through the retry/fallback chain, so a slow primary
    scorer cannot spend the whole budget on retries.
    """

    def __init__(
        self, budget_s: Optional[float], clock: Callable[[], float]
    ) -> None:
        if budget_s is not None and budget_s <= 0:
            raise ValueError(f"budget_s must be > 0 or None, got {budget_s}")
        self.budget_s = budget_s
        self._clock = clock
        self._start = clock()

    def elapsed(self) -> float:
        return self._clock() - self._start

    def remaining(self) -> float:
        if self.budget_s is None:
            return float("inf")
        return self.budget_s - self.elapsed()

    def expired(self) -> bool:
        return self.budget_s is not None and self.remaining() <= 0.0


def exponential_backoff(
    base_s: float, attempt: int, multiplier: float = 2.0
) -> float:
    """Pause before retry ``attempt`` (0-based): ``base * multiplier**n``."""
    return base_s * (multiplier**attempt)


def jittered_backoff(base_s: float, jitter: float, u: float) -> float:
    """Seeded-jitter pause: ``base * (1 + jitter * u)`` for ``u ~ U[0, 1)``.

    The caller draws ``u`` from its own seeded generator (and always
    draws, even when the sleep ends up skipped), so the pause schedule
    is reproducible and the RNG stream stays aligned across runs.
    """
    return base_s * (1.0 + jitter * u)


def cap_to_deadline(pause_s: float, deadline: Optional[Deadline]) -> float:
    """Clamp a pause so it never sleeps past the deadline (never < 0)."""
    if deadline is None:
        return max(pause_s, 0.0)
    return min(max(pause_s, 0.0), max(deadline.remaining(), 0.0))
