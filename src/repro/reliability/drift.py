"""Drift sentinels: PSI/KS monitors against a frozen training reference.

DCMT's inverse-propensity weights ``1/o_hat`` (Eq. (8)-(9), clipped per
Eq. (13)) are calibrated against the *training* propensity
distribution.  When the serving-time distribution of features,
propensities, or predicted CVRs drifts away from that reference, the
weights silently blow up or the calibration silently rots -- neither
failure throws an exception.  This module turns the drift into a
signal:

* :class:`DriftReference` -- a frozen snapshot of the training-time
  distributions (per-dense-feature histograms plus the model's
  ``o_hat`` and CVR prediction histograms), captured once after
  training and serializable to JSON;
* :class:`DriftMonitor` -- one tracked quantity: a sliding window of
  serving-time observations compared to its reference bin-by-bin with
  the population stability index (PSI) and a histogram-based
  Kolmogorov-Smirnov statistic;
* :class:`DriftSentinel` -- the bundle of monitors a
  :class:`~repro.simulation.serving.RankingService` consults; per-monitor
  and overall status is ``ok`` / ``warn`` / ``trip``.

Everything is deterministic: fixed bin edges from the reference, a
bounded deque window, no wall clock.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional

import numpy as np

#: Monitor statuses, in escalating severity.
STATUS_OK = "ok"
STATUS_WARN = "warn"
STATUS_TRIP = "trip"
_SEVERITY = {STATUS_OK: 0, STATUS_WARN: 1, STATUS_TRIP: 2}


def population_stability_index(
    expected: np.ndarray, actual: np.ndarray, eps: float = 1e-4
) -> float:
    """PSI between two histograms over identical bins.

    Bin shares are floored at ``eps`` (then renormalised) so empty bins
    do not produce infinities; < 0.1 is conventionally stable, 0.1-0.25
    moderate shift, > 0.25 a significant shift.
    """
    expected = np.asarray(expected, dtype=float)
    actual = np.asarray(actual, dtype=float)
    if expected.shape != actual.shape:
        raise ValueError(
            f"histogram shapes differ: {expected.shape} vs {actual.shape}"
        )
    e = np.clip(expected / max(expected.sum(), 1e-12), eps, None)
    a = np.clip(actual / max(actual.sum(), 1e-12), eps, None)
    e /= e.sum()
    a /= a.sum()
    return float(np.sum((a - e) * np.log(a / e)))


def ks_statistic(expected: np.ndarray, actual: np.ndarray) -> float:
    """Max CDF gap between two histograms over identical bins."""
    expected = np.asarray(expected, dtype=float)
    actual = np.asarray(actual, dtype=float)
    if expected.shape != actual.shape:
        raise ValueError(
            f"histogram shapes differ: {expected.shape} vs {actual.shape}"
        )
    e = np.cumsum(expected) / max(expected.sum(), 1e-12)
    a = np.cumsum(actual) / max(actual.sum(), 1e-12)
    return float(np.max(np.abs(e - a)))


@dataclass
class ReferenceDistribution:
    """A frozen histogram of one quantity (fixed edges + counts)."""

    name: str
    edges: np.ndarray
    counts: np.ndarray

    @classmethod
    def from_samples(
        cls,
        name: str,
        values: np.ndarray,
        bins: int = 10,
        value_range: Optional[tuple] = None,
    ) -> "ReferenceDistribution":
        values = np.asarray(values, dtype=float)
        values = values[np.isfinite(values)]
        if values.size == 0:
            raise ValueError(f"{name}: no finite reference samples")
        if value_range is None:
            lo, hi = float(values.min()), float(values.max())
            if lo == hi:  # degenerate column: widen so histogram works
                lo, hi = lo - 0.5, hi + 0.5
        else:
            lo, hi = float(value_range[0]), float(value_range[1])
        edges = np.linspace(lo, hi, bins + 1)
        counts, _ = np.histogram(np.clip(values, lo, hi), bins=edges)
        return cls(name=name, edges=edges, counts=counts.astype(float))

    def histogram(self, values: np.ndarray) -> np.ndarray:
        """Bin serving-time values with the frozen reference edges.

        Out-of-range values are clipped into the edge bins, so a shift
        beyond the training support piles up at the boundary -- exactly
        the signature PSI is most sensitive to.
        """
        values = np.asarray(values, dtype=float)
        values = values[np.isfinite(values)]
        clipped = np.clip(values, self.edges[0], self.edges[-1])
        counts, _ = np.histogram(clipped, bins=self.edges)
        return counts.astype(float)

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "edges": [float(e) for e in self.edges],
            "counts": [float(c) for c in self.counts],
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "ReferenceDistribution":
        return cls(
            name=payload["name"],
            edges=np.asarray(payload["edges"], dtype=float),
            counts=np.asarray(payload["counts"], dtype=float),
        )


@dataclass(frozen=True)
class DriftThresholds:
    """Warn/trip levels for both statistics, plus a sample floor."""

    psi_warn: float = 0.10
    psi_trip: float = 0.25
    ks_warn: float = 0.10
    ks_trip: float = 0.20
    #: Monitors report ``ok`` until this many observations accumulate
    #: (small windows make both statistics pure noise).
    min_samples: int = 100

    def __post_init__(self) -> None:
        if not 0 < self.psi_warn <= self.psi_trip:
            raise ValueError("need 0 < psi_warn <= psi_trip")
        if not 0 < self.ks_warn <= self.ks_trip:
            raise ValueError("need 0 < ks_warn <= ks_trip")
        if self.min_samples < 1:
            raise ValueError(f"min_samples must be >= 1, got {self.min_samples}")


class DriftMonitor:
    """Sliding-window drift statistics for one quantity."""

    def __init__(
        self,
        reference: ReferenceDistribution,
        thresholds: Optional[DriftThresholds] = None,
        window: int = 2048,
    ) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.reference = reference
        self.thresholds = thresholds or DriftThresholds()
        self._buffer: deque = deque(maxlen=window)

    @property
    def n_observed(self) -> int:
        return len(self._buffer)

    def observe(self, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=float).ravel()
        self._buffer.extend(values[np.isfinite(values)].tolist())

    def reset(self) -> None:
        self._buffer.clear()

    def psi(self) -> float:
        if not self._buffer:
            return 0.0
        return population_stability_index(
            self.reference.counts, self.reference.histogram(np.array(self._buffer))
        )

    def ks(self) -> float:
        if not self._buffer:
            return 0.0
        return ks_statistic(
            self.reference.counts, self.reference.histogram(np.array(self._buffer))
        )

    def status(self) -> str:
        t = self.thresholds
        if self.n_observed < t.min_samples:
            return STATUS_OK
        psi, ks = self.psi(), self.ks()
        if psi >= t.psi_trip or ks >= t.ks_trip:
            return STATUS_TRIP
        if psi >= t.psi_warn or ks >= t.ks_warn:
            return STATUS_WARN
        return STATUS_OK

    def snapshot(self) -> Dict:
        return {
            "name": self.reference.name,
            "n": self.n_observed,
            "psi": self.psi(),
            "ks": self.ks(),
            "status": self.status(),
        }


@dataclass
class DriftReference:
    """Frozen training-time distributions for every monitored quantity."""

    dense: Dict[str, ReferenceDistribution]
    propensity: ReferenceDistribution
    cvr: ReferenceDistribution

    @classmethod
    def capture(
        cls,
        model,
        dataset,
        sample: int = 2048,
        bins: int = 10,
        seed: int = 0,
    ) -> "DriftReference":
        """Snapshot a trained model against (a sample of) its train set.

        Dense feature histograms come straight from the data; the
        ``o_hat`` (propensity) and CVR histograms come from the model's
        predictions on the sampled rows, binned over the fixed [0, 1]
        probability range.
        """
        rng = np.random.default_rng(seed)
        n = len(dataset)
        if n == 0:
            raise ValueError("cannot capture a drift reference from 0 rows")
        idx = np.sort(rng.choice(n, size=min(sample, n), replace=False))
        subset = dataset.subset(idx)
        preds = model.predict(subset.full_batch())
        dense = {
            c: ReferenceDistribution.from_samples(c, v, bins=bins)
            for c, v in subset.dense.items()
        }
        propensity = ReferenceDistribution.from_samples(
            "o_hat", preds.ctr, bins=bins, value_range=(0.0, 1.0)
        )
        cvr = ReferenceDistribution.from_samples(
            "cvr_hat", preds.cvr, bins=bins, value_range=(0.0, 1.0)
        )
        return cls(dense=dense, propensity=propensity, cvr=cvr)

    # -- serialization -------------------------------------------------
    def to_dict(self) -> Dict:
        return {
            "dense": {k: v.to_dict() for k, v in self.dense.items()},
            "propensity": self.propensity.to_dict(),
            "cvr": self.cvr.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "DriftReference":
        return cls(
            dense={
                k: ReferenceDistribution.from_dict(v)
                for k, v in payload["dense"].items()
            },
            propensity=ReferenceDistribution.from_dict(payload["propensity"]),
            cvr=ReferenceDistribution.from_dict(payload["cvr"]),
        )

    def save(self, path: "Path | str") -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2))
        return path

    @classmethod
    def load(cls, path: "Path | str") -> "DriftReference":
        return cls.from_dict(json.loads(Path(path).read_text()))


class DriftSentinel:
    """The monitor bundle a serving stack consults per request."""

    def __init__(
        self,
        reference: DriftReference,
        thresholds: Optional[DriftThresholds] = None,
        window: int = 2048,
    ) -> None:
        self.thresholds = thresholds or DriftThresholds()
        self.monitors: Dict[str, DriftMonitor] = {
            f"dense:{name}": DriftMonitor(ref, self.thresholds, window)
            for name, ref in reference.dense.items()
        }
        self.monitors["propensity"] = DriftMonitor(
            reference.propensity, self.thresholds, window
        )
        self.monitors["cvr"] = DriftMonitor(reference.cvr, self.thresholds, window)

    def observe(
        self,
        dense: Optional[Dict[str, np.ndarray]] = None,
        o_hat: Optional[np.ndarray] = None,
        cvr: Optional[np.ndarray] = None,
    ) -> None:
        """Feed one request's serving-time observations."""
        if dense:
            for name, values in dense.items():
                monitor = self.monitors.get(f"dense:{name}")
                if monitor is not None:
                    monitor.observe(values)
        if o_hat is not None:
            self.monitors["propensity"].observe(o_hat)
        if cvr is not None:
            self.monitors["cvr"].observe(cvr)

    def statuses(self) -> Dict[str, str]:
        return {name: m.status() for name, m in self.monitors.items()}

    def status(self) -> str:
        """Worst status across every monitor."""
        return max(
            self.statuses().values(), key=_SEVERITY.__getitem__, default=STATUS_OK
        )

    @property
    def tripped(self) -> bool:
        return self.status() == STATUS_TRIP

    @property
    def warned(self) -> bool:
        return _SEVERITY[self.status()] >= _SEVERITY[STATUS_WARN]

    def report(self) -> Dict[str, Dict]:
        return {name: m.snapshot() for name, m in self.monitors.items()}

    def reset(self) -> None:
        for monitor in self.monitors.values():
            monitor.reset()
