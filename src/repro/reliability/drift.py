"""Drift sentinels: PSI/KS monitors against a frozen training reference.

DCMT's inverse-propensity weights ``1/o_hat`` (Eq. (8)-(9), clipped per
Eq. (13)) are calibrated against the *training* propensity
distribution.  When the serving-time distribution of features,
propensities, or predicted CVRs drifts away from that reference, the
weights silently blow up or the calibration silently rots -- neither
failure throws an exception.  This module turns the drift into a
signal:

* :class:`DriftReference` -- a frozen snapshot of the training-time
  distributions (per-dense-feature histograms plus the model's
  ``o_hat`` and CVR prediction histograms), captured once after
  training and serializable to JSON;
* :class:`DriftMonitor` -- one tracked quantity: a sliding window of
  serving-time observations compared to its reference bin-by-bin with
  the population stability index (PSI) and a histogram-based
  Kolmogorov-Smirnov statistic;
* :class:`DriftSentinel` -- the bundle of monitors a
  :class:`~repro.simulation.serving.RankingService` consults; per-monitor
  and overall status is ``ok`` / ``warn`` / ``trip``.

Everything is deterministic: fixed bin edges from the reference, a
bounded deque window, no wall clock.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional

import numpy as np

#: Monitor statuses, in escalating severity.
STATUS_OK = "ok"
STATUS_WARN = "warn"
STATUS_TRIP = "trip"
_SEVERITY = {STATUS_OK: 0, STATUS_WARN: 1, STATUS_TRIP: 2}


def _histogram_shares(
    expected: np.ndarray, actual: np.ndarray
) -> "tuple[np.ndarray, np.ndarray]":
    """Validate two histograms over identical bins and normalise them.

    A histogram with zero total mass has no distribution to compare --
    dividing by its (zero) total would silently manufacture one out of
    the epsilon floor.  That happens in practice when a degenerate
    reference (constant feature column collapsed to zero-width bins by
    a hand-built or legacy JSON payload) is binned: every count lands
    nowhere.  Refuse loudly instead of returning garbage.
    """
    expected = np.asarray(expected, dtype=float)
    actual = np.asarray(actual, dtype=float)
    if expected.shape != actual.shape:
        raise ValueError(
            f"histogram shapes differ: {expected.shape} vs {actual.shape}"
        )
    e_total, a_total = expected.sum(), actual.sum()
    if e_total <= 0 or a_total <= 0:
        raise ValueError(
            "histogram has zero total mass (degenerate zero-width bins?); "
            f"expected.sum()={e_total:g} actual.sum()={a_total:g}"
        )
    return expected / e_total, actual / a_total


def population_stability_index(
    expected: np.ndarray, actual: np.ndarray, eps: float = 1e-4
) -> float:
    """PSI between two histograms over identical bins.

    Bin shares are floored at ``eps`` (then renormalised) so empty bins
    do not produce infinities; < 0.1 is conventionally stable, 0.1-0.25
    moderate shift, > 0.25 a significant shift.  Raises ``ValueError``
    on an all-zero histogram (see :func:`_histogram_shares`).
    """
    e, a = _histogram_shares(expected, actual)
    e = np.clip(e, eps, None)
    a = np.clip(a, eps, None)
    e /= e.sum()
    a /= a.sum()
    return float(np.sum((a - e) * np.log(a / e)))


def ks_statistic(expected: np.ndarray, actual: np.ndarray) -> float:
    """Max CDF gap between two histograms over identical bins.

    Raises ``ValueError`` on an all-zero histogram rather than dividing
    by zero mass (see :func:`_histogram_shares`).
    """
    e, a = _histogram_shares(expected, actual)
    return float(np.max(np.abs(np.cumsum(e) - np.cumsum(a))))


def _widen_degenerate_range(lo: float, hi: float) -> "tuple[float, float]":
    """Open up a zero-width value range so histogram edges stay strictly
    increasing (a constant feature column otherwise collapses every bin
    to width zero and binning divides by nothing)."""
    if lo == hi:
        return lo - 0.5, hi + 0.5
    return lo, hi


@dataclass
class ReferenceDistribution:
    """A frozen histogram of one quantity (fixed edges + counts)."""

    name: str
    edges: np.ndarray
    counts: np.ndarray

    @classmethod
    def from_samples(
        cls,
        name: str,
        values: np.ndarray,
        bins: int = 10,
        value_range: Optional[tuple] = None,
    ) -> "ReferenceDistribution":
        values = np.asarray(values, dtype=float)
        values = values[np.isfinite(values)]
        if values.size == 0:
            raise ValueError(f"{name}: no finite reference samples")
        if value_range is None:
            lo, hi = float(values.min()), float(values.max())
        else:
            lo, hi = float(value_range[0]), float(value_range[1])
        lo, hi = _widen_degenerate_range(lo, hi)
        edges = np.linspace(lo, hi, bins + 1)
        counts, _ = np.histogram(np.clip(values, lo, hi), bins=edges)
        return cls(name=name, edges=edges, counts=counts.astype(float))

    def histogram(self, values: np.ndarray) -> np.ndarray:
        """Bin serving-time values with the frozen reference edges.

        Out-of-range values are clipped into the edge bins, so a shift
        beyond the training support piles up at the boundary -- exactly
        the signature PSI is most sensitive to.
        """
        values = np.asarray(values, dtype=float)
        values = values[np.isfinite(values)]
        clipped = np.clip(values, self.edges[0], self.edges[-1])
        counts, _ = np.histogram(clipped, bins=self.edges)
        return counts.astype(float)

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "edges": [float(e) for e in self.edges],
            "counts": [float(c) for c in self.counts],
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "ReferenceDistribution":
        """Rebuild from JSON, repairing degenerate zero-width edges.

        References captured before the constant-column widening (or
        hand-built payloads) can carry edges that collapsed to a single
        value; re-spreading them around that value keeps the round trip
        loadable and the monitors' PSI/KS finite instead of dividing by
        zero-mass histograms.
        """
        edges = np.asarray(payload["edges"], dtype=float)
        if len(edges) < 2:
            raise ValueError(
                f"{payload['name']}: need at least 2 histogram edges"
            )
        if edges[0] == edges[-1]:  # zero-width legacy/degenerate payload
            lo, hi = _widen_degenerate_range(float(edges[0]), float(edges[-1]))
            edges = np.linspace(lo, hi, len(edges))
        elif np.any(np.diff(edges) <= 0):
            raise ValueError(
                f"{payload['name']}: histogram edges must be strictly "
                "increasing"
            )
        return cls(
            name=payload["name"],
            edges=edges,
            counts=np.asarray(payload["counts"], dtype=float),
        )


@dataclass(frozen=True)
class DriftThresholds:
    """Warn/trip levels for both statistics, plus a sample floor."""

    psi_warn: float = 0.10
    psi_trip: float = 0.25
    ks_warn: float = 0.10
    ks_trip: float = 0.20
    #: Monitors report ``ok`` until this many observations accumulate
    #: (small windows make both statistics pure noise).
    min_samples: int = 100

    def __post_init__(self) -> None:
        if not 0 < self.psi_warn <= self.psi_trip:
            raise ValueError("need 0 < psi_warn <= psi_trip")
        if not 0 < self.ks_warn <= self.ks_trip:
            raise ValueError("need 0 < ks_warn <= ks_trip")
        if self.min_samples < 1:
            raise ValueError(f"min_samples must be >= 1, got {self.min_samples}")


class DriftMonitor:
    """Sliding-window drift statistics for one quantity."""

    def __init__(
        self,
        reference: ReferenceDistribution,
        thresholds: Optional[DriftThresholds] = None,
        window: int = 2048,
    ) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.reference = reference
        self.thresholds = thresholds or DriftThresholds()
        self._buffer: deque = deque(maxlen=window)

    @property
    def n_observed(self) -> int:
        return len(self._buffer)

    def observe(self, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=float).ravel()
        self._buffer.extend(values[np.isfinite(values)].tolist())

    def reset(self) -> None:
        self._buffer.clear()

    def psi(self) -> float:
        if not self._buffer:
            return 0.0
        return population_stability_index(
            self.reference.counts, self.reference.histogram(np.array(self._buffer))
        )

    def ks(self) -> float:
        if not self._buffer:
            return 0.0
        return ks_statistic(
            self.reference.counts, self.reference.histogram(np.array(self._buffer))
        )

    def status(self) -> str:
        t = self.thresholds
        if self.n_observed < t.min_samples:
            return STATUS_OK
        psi, ks = self.psi(), self.ks()
        if psi >= t.psi_trip or ks >= t.ks_trip:
            return STATUS_TRIP
        if psi >= t.psi_warn or ks >= t.ks_warn:
            return STATUS_WARN
        return STATUS_OK

    def snapshot(self) -> Dict:
        return {
            "name": self.reference.name,
            "n": self.n_observed,
            "psi": self.psi(),
            "ks": self.ks(),
            "status": self.status(),
        }


@dataclass
class DriftReference:
    """Frozen training-time distributions for every monitored quantity."""

    dense: Dict[str, ReferenceDistribution]
    propensity: ReferenceDistribution
    cvr: ReferenceDistribution

    @classmethod
    def capture(
        cls,
        model,
        dataset,
        sample: int = 2048,
        bins: int = 10,
        seed: int = 0,
    ) -> "DriftReference":
        """Snapshot a trained model against (a sample of) its train set.

        Dense feature histograms come straight from the data; the
        ``o_hat`` (propensity) and CVR histograms come from the model's
        predictions on the sampled rows, binned over the fixed [0, 1]
        probability range.
        """
        rng = np.random.default_rng(seed)
        n = len(dataset)
        if n == 0:
            raise ValueError("cannot capture a drift reference from 0 rows")
        idx = np.sort(rng.choice(n, size=min(sample, n), replace=False))
        subset = dataset.subset(idx)
        preds = model.predict(subset.full_batch())
        dense = {
            c: ReferenceDistribution.from_samples(c, v, bins=bins)
            for c, v in subset.dense.items()
        }
        propensity = ReferenceDistribution.from_samples(
            "o_hat", preds.ctr, bins=bins, value_range=(0.0, 1.0)
        )
        cvr = ReferenceDistribution.from_samples(
            "cvr_hat", preds.cvr, bins=bins, value_range=(0.0, 1.0)
        )
        return cls(dense=dense, propensity=propensity, cvr=cvr)

    # -- serialization -------------------------------------------------
    def to_dict(self) -> Dict:
        return {
            "dense": {k: v.to_dict() for k, v in self.dense.items()},
            "propensity": self.propensity.to_dict(),
            "cvr": self.cvr.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "DriftReference":
        return cls(
            dense={
                k: ReferenceDistribution.from_dict(v)
                for k, v in payload["dense"].items()
            },
            propensity=ReferenceDistribution.from_dict(payload["propensity"]),
            cvr=ReferenceDistribution.from_dict(payload["cvr"]),
        )

    def save(self, path: "Path | str") -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2))
        return path

    @classmethod
    def load(cls, path: "Path | str") -> "DriftReference":
        return cls.from_dict(json.loads(Path(path).read_text()))


class DriftSentinel:
    """The monitor bundle a serving stack consults per request."""

    def __init__(
        self,
        reference: DriftReference,
        thresholds: Optional[DriftThresholds] = None,
        window: int = 2048,
    ) -> None:
        self.thresholds = thresholds or DriftThresholds()
        self.monitors: Dict[str, DriftMonitor] = {
            f"dense:{name}": DriftMonitor(ref, self.thresholds, window)
            for name, ref in reference.dense.items()
        }
        self.monitors["propensity"] = DriftMonitor(
            reference.propensity, self.thresholds, window
        )
        self.monitors["cvr"] = DriftMonitor(reference.cvr, self.thresholds, window)

    def observe(
        self,
        dense: Optional[Dict[str, np.ndarray]] = None,
        o_hat: Optional[np.ndarray] = None,
        cvr: Optional[np.ndarray] = None,
    ) -> None:
        """Feed one request's serving-time observations."""
        if dense:
            for name, values in dense.items():
                monitor = self.monitors.get(f"dense:{name}")
                if monitor is not None:
                    monitor.observe(values)
        if o_hat is not None:
            self.monitors["propensity"].observe(o_hat)
        if cvr is not None:
            self.monitors["cvr"].observe(cvr)

    def statuses(self) -> Dict[str, str]:
        return {name: m.status() for name, m in self.monitors.items()}

    def status(self) -> str:
        """Worst status across every monitor."""
        return max(
            self.statuses().values(), key=_SEVERITY.__getitem__, default=STATUS_OK
        )

    @property
    def tripped(self) -> bool:
        return self.status() == STATUS_TRIP

    @property
    def warned(self) -> bool:
        return _SEVERITY[self.status()] >= _SEVERITY[STATUS_WARN]

    def report(self) -> Dict[str, Dict]:
        return {name: m.snapshot() for name, m in self.monitors.items()}

    def reset(self) -> None:
        for monitor in self.monitors.values():
            monitor.reset()


# ----------------------------------------------------------------------
# Outcome calibration (the confounder-shift detector)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CalibrationThresholds:
    """Warn/trip levels for the prediction-vs-outcome gap."""

    gap_warn: float = 0.02
    gap_trip: float = 0.05
    #: Pairs required before the gap is trusted (binary outcomes make
    #: small windows pure noise).
    min_samples: int = 200

    def __post_init__(self) -> None:
        if not 0 < self.gap_warn <= self.gap_trip:
            raise ValueError("need 0 < gap_warn <= gap_trip")
        if self.min_samples < 1:
            raise ValueError(
                f"min_samples must be >= 1, got {self.min_samples}"
            )


class CalibrationMonitor:
    """Sliding-window ``|E[prediction] - E[outcome]|`` gap.

    A *hidden-confounder* shift is invisible to every feature-space
    monitor: the observable feature distribution and the model's
    prediction distribution both stay put, because what changed is the
    unobserved attention variable ``h`` inside ``p(o=1 | x, h)``
    (Section I-C of the paper; the non-stationarity warning of the
    Twitter entire-space analysis).  What *does* move is realised
    behaviour against the model's calibrated expectations: the clicks
    and conversions that actually happen stop matching the
    probabilities the model assigns to them.  This monitor pairs each
    prediction with its realised binary outcome and trips when the
    windowed mean gap exceeds the threshold -- the label-aware
    complement to :class:`DriftSentinel`'s label-free PSI/KS.

    On a *served* (model-selected) slice the raw gap carries a large
    steady-state offset that is not drift: ranking by predicted score
    selects rows whose predictions overshoot their outcomes (the
    winner's curse), so ``E[prediction] - E[outcome]`` sits well above
    zero from the champion's first page onward.  ``auto_baseline=True``
    handles that slice honestly: the first time the window fills to
    ``min_samples`` the monitor freezes the current gap as the
    champion's own launch calibration and thereafter alerts on the
    *deviation* from it (:meth:`drift`), so only the world moving --
    not the selection effect -- can trip it.  :meth:`reset` clears the
    baseline along with the window, so every promotion re-baselines.
    """

    def __init__(
        self,
        name: str,
        thresholds: Optional[CalibrationThresholds] = None,
        window: int = 4096,
        auto_baseline: bool = False,
    ) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.name = name
        self.thresholds = thresholds or CalibrationThresholds()
        self.auto_baseline = auto_baseline
        self._baseline: Optional[float] = None
        self._predicted: deque = deque(maxlen=window)
        self._observed: deque = deque(maxlen=window)

    @property
    def n_observed(self) -> int:
        return len(self._predicted)

    def observe(self, predicted: np.ndarray, outcomes: np.ndarray) -> None:
        """Feed aligned (prediction, realised outcome) pairs."""
        predicted = np.asarray(predicted, dtype=float).ravel()
        outcomes = np.asarray(outcomes, dtype=float).ravel()
        if predicted.shape != outcomes.shape:
            raise ValueError(
                f"predicted/outcomes shapes differ: {predicted.shape} vs "
                f"{outcomes.shape}"
            )
        keep = np.isfinite(predicted) & np.isfinite(outcomes)
        self._predicted.extend(predicted[keep].tolist())
        self._observed.extend(outcomes[keep].tolist())

    def reset(self, keep_baseline: bool = False) -> None:
        """Clear the window (and, by default, the frozen baseline).

        ``keep_baseline=True`` supports the promotion/rollback dance: a
        freshly promoted champion is judged against the *previous*
        champion's steady-state gap for its grace period (a healthy
        successor lands near it; a broken one deviates and trips), and
        only re-baselines once it survives.
        """
        self._predicted.clear()
        self._observed.clear()
        if not keep_baseline:
            self._baseline = None

    def gap(self) -> float:
        """Signed windowed ``E[prediction] - E[outcome]``."""
        if not self._predicted:
            return 0.0
        return float(
            np.mean(np.array(self._predicted)) - np.mean(np.array(self._observed))
        )

    @property
    def baseline(self) -> Optional[float]:
        return self._baseline

    def rebase(self) -> float:
        """Freeze the current gap as the zero point for :meth:`drift`."""
        self._baseline = self.gap()
        return self._baseline

    def drift(self) -> float:
        """Signed gap relative to the baseline (raw gap if unset)."""
        if self._baseline is None:
            return self.gap()
        return self.gap() - self._baseline

    def status(self) -> str:
        t = self.thresholds
        if self.n_observed < t.min_samples:
            return STATUS_OK
        if self.auto_baseline and self._baseline is None:
            # First full window after a reset IS the reference point.
            self.rebase()
            return STATUS_OK
        gap = abs(self.drift())
        if gap >= t.gap_trip:
            return STATUS_TRIP
        if gap >= t.gap_warn:
            return STATUS_WARN
        return STATUS_OK

    @property
    def tripped(self) -> bool:
        return self.status() == STATUS_TRIP

    def snapshot(self) -> Dict:
        return {
            "name": self.name,
            "n": self.n_observed,
            "gap": self.gap(),
            "baseline": self._baseline,
            "drift": self.drift(),
            "status": self.status(),
        }
