"""Checksummed, atomic training checkpoints.

A checkpoint is one self-contained file::

    RPROCKPT1\\n<sha256 hex of payload>\\n<npz payload>

The payload is a standard ``.npz`` archive (model parameters, optimizer
moment arrays, and a JSON metadata blob carrying every non-array field:
RNG states, training history, loop counters).  The leading digest makes
truncation and bit-rot detectable *before* any array is parsed; writes
go through a temp file plus ``os.replace`` so a crash mid-write never
leaves a half-written file under the final name.

:class:`CheckpointManager` adds rotation (keep the newest ``keep``
snapshots) and recovery: ``latest()`` walks backwards past corrupt
files to the newest verifiable snapshot.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

import numpy as np

from repro.reliability.errors import CheckpointCorruptError
from repro.utils.logging import get_logger

logger = get_logger("reliability.checkpoint")

MAGIC = b"RPROCKPT1\n"
SNAPSHOT_VERSION = 1

_META_KEY = "__meta__"
_MODEL_PREFIX = "model."
_OPTIM_PREFIX = "optim."


@dataclass
class TrainingSnapshot:
    """Everything needed to continue a training run bit-exactly.

    ``optimizer_state`` is whatever ``Optimizer.state_dict()`` returned
    (scalars plus lists of moment arrays); ``trainer_rng_state`` is the
    trainer's generator state *at the start of the current epoch*, so a
    resume can re-draw the epoch's shuffle permutation and skip the
    ``batch_in_epoch`` batches already consumed.
    """

    model_state: Dict[str, np.ndarray]
    optimizer_state: Dict[str, Any]
    trainer_rng_state: Optional[Dict[str, Any]]
    module_rng_states: List[Dict[str, Any]]
    history: Dict[str, Any]
    epoch: int
    batch_in_epoch: int
    epoch_loss_sum: float = 0.0
    n_batches_done: int = 0
    best_metric: float = float("-inf")
    stale: int = 0
    metadata: Dict[str, Any] = field(default_factory=dict)


def dumps_snapshot(snapshot: TrainingSnapshot) -> bytes:
    """Serialise a snapshot to the framed checkpoint byte format."""
    arrays: Dict[str, np.ndarray] = {}
    for name, arr in snapshot.model_state.items():
        arrays[_MODEL_PREFIX + name] = np.asarray(arr)

    optim_scalars: Dict[str, Any] = {}
    optim_array_lens: Dict[str, int] = {}
    for key, value in snapshot.optimizer_state.items():
        if isinstance(value, (list, tuple)) and all(
            isinstance(item, np.ndarray) for item in value
        ):
            optim_array_lens[key] = len(value)
            for i, item in enumerate(value):
                arrays[f"{_OPTIM_PREFIX}{key}.{i}"] = item
        else:
            optim_scalars[key] = value

    meta = {
        "snapshot_version": SNAPSHOT_VERSION,
        "optimizer_scalars": optim_scalars,
        "optimizer_array_lens": optim_array_lens,
        "trainer_rng_state": snapshot.trainer_rng_state,
        "module_rng_states": snapshot.module_rng_states,
        "history": snapshot.history,
        "epoch": snapshot.epoch,
        "batch_in_epoch": snapshot.batch_in_epoch,
        "epoch_loss_sum": snapshot.epoch_loss_sum,
        "n_batches_done": snapshot.n_batches_done,
        "best_metric": snapshot.best_metric,
        "stale": snapshot.stale,
        "metadata": snapshot.metadata,
    }
    blob = np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8)
    buffer = io.BytesIO()
    np.savez(buffer, **arrays, **{_META_KEY: blob})
    payload = buffer.getvalue()
    digest = hashlib.sha256(payload).hexdigest().encode("ascii")
    return MAGIC + digest + b"\n" + payload


def loads_snapshot(data: bytes) -> TrainingSnapshot:
    """Parse framed checkpoint bytes, verifying magic and checksum."""
    header_len = len(MAGIC) + 65  # magic + 64 hex digits + newline
    if len(data) < header_len:
        # Distinguish a torn write of a real checkpoint (prefix of the
        # magic survives) from a file that was never a checkpoint.
        if MAGIC.startswith(data[: len(MAGIC)]):
            raise CheckpointCorruptError(
                f"truncated checkpoint: {len(data)} bytes is shorter than "
                f"the {header_len}-byte frame header"
            )
        raise CheckpointCorruptError("bad magic: not a repro checkpoint")
    if not data.startswith(MAGIC):
        raise CheckpointCorruptError("bad magic: not a repro checkpoint")
    rest = data[len(MAGIC) :]
    newline = rest.find(b"\n")
    if newline != 64:
        raise CheckpointCorruptError("malformed checksum header")
    digest = rest[:64].decode("ascii", errors="replace")
    payload = rest[65:]
    actual = hashlib.sha256(payload).hexdigest()
    if actual != digest:
        raise CheckpointCorruptError(
            "checksum mismatch (truncated or bit-rotted payload): "
            f"expected {digest}, actual {actual} over {len(payload)} "
            "payload bytes"
        )
    try:
        with np.load(io.BytesIO(payload), allow_pickle=False) as archive:
            meta = json.loads(bytes(archive[_META_KEY]).decode("utf-8"))
            arrays = {
                key: archive[key] for key in archive.files if key != _META_KEY
            }
    except CheckpointCorruptError:
        raise
    except Exception as exc:  # zip/json/key errors -> one corruption class
        raise CheckpointCorruptError(f"unreadable checkpoint payload: {exc}") from exc

    if meta.get("snapshot_version", 0) > SNAPSHOT_VERSION:
        raise CheckpointCorruptError(
            f"snapshot version {meta['snapshot_version']} is newer than "
            f"this library supports ({SNAPSHOT_VERSION})"
        )

    model_state = {
        key[len(_MODEL_PREFIX) :]: value
        for key, value in arrays.items()
        if key.startswith(_MODEL_PREFIX)
    }
    optimizer_state: Dict[str, Any] = dict(meta["optimizer_scalars"])
    for key, length in meta["optimizer_array_lens"].items():
        optimizer_state[key] = [
            arrays[f"{_OPTIM_PREFIX}{key}.{i}"] for i in range(length)
        ]
    return TrainingSnapshot(
        model_state=model_state,
        optimizer_state=optimizer_state,
        trainer_rng_state=meta["trainer_rng_state"],
        module_rng_states=meta["module_rng_states"],
        history=meta["history"],
        epoch=meta["epoch"],
        batch_in_epoch=meta["batch_in_epoch"],
        epoch_loss_sum=meta["epoch_loss_sum"],
        n_batches_done=meta["n_batches_done"],
        best_metric=meta["best_metric"],
        stale=meta["stale"],
        metadata=meta["metadata"],
    )


def save_snapshot(snapshot: TrainingSnapshot, path: "Path | str") -> Path:
    """Write one snapshot atomically (temp file, fsync, rename).

    A kill at any point leaves either the old file or the new file under
    the canonical name, never a partial write; the directory is fsynced
    after the rename so the publication itself survives a power loss.
    """
    path = Path(path)
    data = dumps_snapshot(snapshot)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    fsync_directory(path.parent)
    return path


def fsync_directory(directory: "Path | str") -> None:
    """Flush a directory entry so a completed rename is durable.

    Best-effort: some filesystems (and all of Windows) refuse to open a
    directory for fsync; atomicity of the rename itself does not depend
    on this, only crash-durability of the new directory entry.
    """
    try:
        fd = os.open(str(directory), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def load_snapshot(path: "Path | str") -> TrainingSnapshot:
    """Read and verify one snapshot; raises :class:`CheckpointCorruptError`."""
    path = Path(path)
    try:
        data = path.read_bytes()
    except OSError as exc:
        raise CheckpointCorruptError(f"cannot read checkpoint {path}: {exc}") from exc
    return loads_snapshot(data)


def verify_snapshot(path: "Path | str") -> bool:
    """True when the file parses and its checksum matches."""
    try:
        load_snapshot(path)
    except CheckpointCorruptError:
        return False
    return True


class CheckpointManager:
    """Rotating checkpoint store with corruption-tolerant recovery."""

    def __init__(self, directory: "Path | str", keep: int = 3) -> None:
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.keep = keep

    # ------------------------------------------------------------------
    def path_for(self, step: int) -> Path:
        return self.directory / f"ckpt-{step:010d}.ckpt"

    def paths(self) -> List[Path]:
        """All stored checkpoint paths, oldest first."""
        return sorted(self.directory.glob("ckpt-*.ckpt"))

    # ------------------------------------------------------------------
    def save(self, snapshot: TrainingSnapshot, step: int) -> Path:
        """Persist ``snapshot`` under a monotonically named file."""
        path = save_snapshot(snapshot, self.path_for(step))
        logger.debug("checkpoint saved: %s", path.name)
        self._rotate()
        return path

    def latest(self) -> Optional[Path]:
        """Newest *verifiable* checkpoint, skipping corrupt files."""
        for path in reversed(self.paths()):
            if verify_snapshot(path):
                return path
            logger.warning(
                "checkpoint %s failed verification; falling back to the "
                "previous snapshot",
                path.name,
            )
        return None

    def load(self, path: "Path | str") -> TrainingSnapshot:
        return load_snapshot(path)

    def load_latest(self) -> Optional[TrainingSnapshot]:
        """Load the newest valid snapshot (None when the store is empty)."""
        path = self.latest()
        return None if path is None else load_snapshot(path)

    # ------------------------------------------------------------------
    def _rotate(self) -> None:
        for stale in self.paths()[: -self.keep or None]:
            stale.unlink(missing_ok=True)
        # A kill between the temp-file write and the rename strands a
        # ``*.tmp`` next to the real snapshots; it is never loadable
        # (``paths`` only matches ``*.ckpt``), so sweep it here.
        for orphan in self.directory.glob("ckpt-*.ckpt.tmp"):
            orphan.unlink(missing_ok=True)
            logger.warning(
                "removed orphaned partial checkpoint %s (interrupted save)",
                orphan.name,
            )
