"""Fault tolerance for training and serving.

The north star is a production CVR system, and DCMT's inverse-propensity
losses are exactly the kind that blow up there: IPW weights ``1/o_hat``
diverge as propensities collapse, one NaN batch poisons a run, and one
flaky scorer can take down a results page.  This package makes those
failures survivable:

* :mod:`~repro.reliability.checkpoint` -- checksummed atomic snapshots
  of the full training state (parameters, Adam moments, RNG streams,
  history) with rotation and corruption-tolerant recovery;
* :mod:`~repro.reliability.guards` -- NaN/spike loss detection and
  propensity-collapse monitoring;
* :mod:`~repro.reliability.faults` / :mod:`~repro.reliability.chaos` --
  deterministic fault injection for batches and the scoring path, used
  by tests to prove the guards fire;
* :mod:`~repro.reliability.circuit` -- the circuit breaker behind
  :class:`~repro.simulation.serving.RankingService`'s fallback chain;
* :mod:`~repro.reliability.drift` -- PSI/KS sentinels comparing
  serving-time feature/propensity/CVR distributions against a frozen
  training reference;
* :mod:`~repro.reliability.health` -- the HEALTHY -> DEGRADED ->
  SHEDDING state machine driven by the breaker, the sentinels, and the
  admission-queue depth together;
* :mod:`~repro.reliability.errors` -- the shared exception taxonomy.
"""

from repro.reliability.chaos import ChaosScoring
from repro.reliability.checkpoint import (
    CheckpointManager,
    TrainingSnapshot,
    load_snapshot,
    save_snapshot,
    verify_snapshot,
)
from repro.reliability.circuit import CircuitBreaker
from repro.reliability.config import (
    AdmissionPolicy,
    FleetPolicy,
    ReliabilityConfig,
    ServingPolicy,
)
from repro.reliability.drift import (
    CalibrationMonitor,
    CalibrationThresholds,
    DriftMonitor,
    DriftReference,
    DriftSentinel,
    DriftThresholds,
    ReferenceDistribution,
    ks_statistic,
    population_stability_index,
)
from repro.reliability.errors import (
    CheckpointCorruptError,
    DivergenceError,
    PromotionBlockedError,
    PropensityCollapseWarning,
    RegistryCorruptError,
    ReliabilityError,
    ReplicaUnavailableError,
    RequestShedError,
    ScoringUnavailableError,
    WorkerPoolError,
)
from repro.reliability.timeouts import (
    Deadline,
    cap_to_deadline,
    exponential_backoff,
    jittered_backoff,
)
from repro.reliability.health import (
    CRITICAL,
    DEGRADED,
    HEALTHY,
    SHEDDING,
    FleetHealthMonitor,
    FleetHealthPolicy,
    HealthMonitor,
    HealthPolicy,
    HealthTransition,
)
from repro.reliability.faults import (
    FaultInjector,
    FaultRecord,
    FaultSpec,
    FleetFaultSpec,
    ReplicaFault,
    TrainerFaultSpec,
    WorkerFault,
    build_fleet_fault_schedule,
    build_trainer_fault_schedule,
)
from repro.reliability.guards import (
    GuardEvent,
    LossGuard,
    LossGuardConfig,
    propensity_collapse_fraction,
    warn_on_propensity_collapse,
)

__all__ = [
    "AdmissionPolicy",
    "CalibrationMonitor",
    "CalibrationThresholds",
    "ChaosScoring",
    "DriftMonitor",
    "DriftReference",
    "DriftSentinel",
    "DriftThresholds",
    "ReferenceDistribution",
    "ks_statistic",
    "population_stability_index",
    "RequestShedError",
    "ReplicaUnavailableError",
    "HEALTHY",
    "DEGRADED",
    "SHEDDING",
    "CRITICAL",
    "FleetHealthMonitor",
    "FleetHealthPolicy",
    "HealthMonitor",
    "HealthPolicy",
    "HealthTransition",
    "CheckpointManager",
    "TrainingSnapshot",
    "load_snapshot",
    "save_snapshot",
    "verify_snapshot",
    "CircuitBreaker",
    "FleetPolicy",
    "ReliabilityConfig",
    "ServingPolicy",
    "ReliabilityError",
    "CheckpointCorruptError",
    "DivergenceError",
    "PromotionBlockedError",
    "RegistryCorruptError",
    "ScoringUnavailableError",
    "PropensityCollapseWarning",
    "WorkerPoolError",
    "Deadline",
    "cap_to_deadline",
    "exponential_backoff",
    "jittered_backoff",
    "FaultInjector",
    "FaultRecord",
    "FaultSpec",
    "FleetFaultSpec",
    "ReplicaFault",
    "TrainerFaultSpec",
    "WorkerFault",
    "build_fleet_fault_schedule",
    "build_trainer_fault_schedule",
    "GuardEvent",
    "LossGuard",
    "LossGuardConfig",
    "propensity_collapse_fraction",
    "warn_on_propensity_collapse",
]
