"""A minimal circuit breaker for the serving fallback chain.

Classic three-state machine:

* **closed** -- normal operation; consecutive failures are counted and
  ``failure_threshold`` of them open the circuit;
* **open** -- the primary path is skipped entirely (no retries burning
  latency on a dead model) until ``recovery_time`` has elapsed;
* **half_open** -- one probe call is allowed through; success closes
  the circuit, failure re-opens it and restarts the cool-down.

The clock is injectable so tests can drive state transitions
deterministically without sleeping.
"""

from __future__ import annotations

import time
from typing import Callable, Optional


class CircuitBreaker:
    """Consecutive-failure breaker with timed half-open probes."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        failure_threshold: int = 5,
        recovery_time: float = 30.0,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if recovery_time < 0:
            raise ValueError(f"recovery_time must be >= 0, got {recovery_time}")
        self.failure_threshold = failure_threshold
        self.recovery_time = recovery_time
        self._clock = clock or time.monotonic
        self._state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        #: Lifetime counters, observable for dashboards and tests.
        self.total_failures = 0
        self.total_successes = 0
        self.times_opened = 0

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        """Current state, promoting open -> half_open after cool-down."""
        if (
            self._state == self.OPEN
            and self._clock() - self._opened_at >= self.recovery_time
        ):
            self._state = self.HALF_OPEN
        return self._state

    def allow(self) -> bool:
        """May the caller attempt the primary path right now?"""
        return self.state != self.OPEN

    # ------------------------------------------------------------------
    def record_success(self) -> None:
        self.total_successes += 1
        self._consecutive_failures = 0
        self._state = self.CLOSED

    def record_failure(self) -> None:
        self.total_failures += 1
        if self.state == self.HALF_OPEN:
            self._open()
            return
        self._consecutive_failures += 1
        if self._consecutive_failures >= self.failure_threshold:
            self._open()

    def reset(self) -> None:
        """Force back to closed (operator override)."""
        self._state = self.CLOSED
        self._consecutive_failures = 0

    def time_to_half_open(self) -> float:
        """Seconds until the next half-open probe (0 unless open).

        While the breaker is OPEN this counts down the remaining
        cool-down; CLOSED and HALF_OPEN report 0.0 (a probe is already
        allowed).  Reading it never mutates state beyond the usual
        open -> half_open promotion of :attr:`state`.
        """
        if self.state != self.OPEN:
            return 0.0
        remaining = self.recovery_time - (self._clock() - self._opened_at)
        return max(remaining, 0.0)

    def snapshot(self) -> dict:
        """Structured view for dashboards and the canary health report.

        Shape-compatible with :meth:`HealthMonitor.snapshot`: a ``state``
        plus the counters that explain it, so fleet status reports can
        render every replica's machines uniformly.
        """
        return {
            "state": self.state,
            "consecutive_failures": self._consecutive_failures,
            "time_to_half_open": self.time_to_half_open(),
            "total_failures": self.total_failures,
            "total_successes": self.total_successes,
            "times_opened": self.times_opened,
        }

    def _open(self) -> None:
        self._state = self.OPEN
        self._opened_at = self._clock()
        self._consecutive_failures = 0
        self.times_opened += 1
