"""Serving health state machine: HEALTHY -> DEGRADED -> SHEDDING.

One service-level state computed from three independent signals --
the circuit breaker guarding the primary scorer, the drift sentinels,
and the admission-queue depth -- so operators (and the admission
controller itself) read a single word instead of cross-referencing
three dashboards:

* **HEALTHY** -- breaker closed, no drift trip, queue shallow;
* **DEGRADED** -- the breaker is open (traffic is riding the fallback
  chain), a drift sentinel has tripped, or the queue is filling;
* **SHEDDING** -- the queue is near capacity, or the breaker is open
  *while* drift has tripped (fallback quality is itself suspect); the
  admission controller sheds a deterministic fraction of traffic.

Escalation is immediate; de-escalation steps down one level only after
``recovery_grace`` consecutive clean evaluations, so one good request
cannot flap the service back to HEALTHY mid-incident.  A *fresh*
degradation signal during that grace period (the target severity rising
between evaluations, e.g. a breaker trip while SHEDDING is pending its
step-down) re-arms the counter instead of riding the pending step-down.
Every transition is recorded with its reason for forensics and tests,
and :meth:`HealthMonitor.snapshot` exposes the machine's full state for
per-arm dashboards (the canary controller's health view).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

HEALTHY = "healthy"
DEGRADED = "degraded"
SHEDDING = "shedding"
_RANK = {HEALTHY: 0, DEGRADED: 1, SHEDDING: 2}
_BY_RANK = [HEALTHY, DEGRADED, SHEDDING]

#: Fleet-level terminal state: no replica can take traffic at all.
CRITICAL = "critical"
_FLEET_RANK = {HEALTHY: 0, DEGRADED: 1, CRITICAL: 2}
_FLEET_BY_RANK = [HEALTHY, DEGRADED, CRITICAL]


@dataclass(frozen=True)
class HealthPolicy:
    """When queue depth degrades or sheds, and how recovery is paced."""

    #: Queue fullness (depth / max depth) that marks DEGRADED.
    degrade_queue_fraction: float = 0.5
    #: Queue fullness that forces SHEDDING.
    shed_queue_fraction: float = 0.9
    #: Consecutive clean evaluations before stepping down one level.
    recovery_grace: int = 3

    def __post_init__(self) -> None:
        if not 0.0 < self.degrade_queue_fraction <= self.shed_queue_fraction:
            raise ValueError(
                "need 0 < degrade_queue_fraction <= shed_queue_fraction, got "
                f"{self.degrade_queue_fraction} / {self.shed_queue_fraction}"
            )
        if self.shed_queue_fraction > 1.0:
            raise ValueError(
                f"shed_queue_fraction must be <= 1, got {self.shed_queue_fraction}"
            )
        if self.recovery_grace < 1:
            raise ValueError(
                f"recovery_grace must be >= 1, got {self.recovery_grace}"
            )


@dataclass(frozen=True)
class HealthTransition:
    """One recorded state change (evaluation index + cause)."""

    step: int
    from_state: str
    to_state: str
    reason: str


@dataclass
class HealthMonitor:
    """Evaluates the three signals into one state with hysteresis."""

    policy: HealthPolicy = field(default_factory=HealthPolicy)
    _state: str = HEALTHY
    _steps: int = 0
    _calm: int = 0
    #: Severity rank of the previous evaluation's target (re-arm logic).
    _last_target_rank: int = 0
    #: Raw signals of the most recent evaluation, for :meth:`snapshot`.
    _last_signals: Dict[str, Any] = field(default_factory=dict)
    transitions: List[HealthTransition] = field(default_factory=list)

    @property
    def state(self) -> str:
        return self._state

    def _target(
        self, breaker_open: bool, drift_status: str, queue_fraction: float
    ) -> Tuple[str, str]:
        """Severity the current signals call for, with its reason."""
        if queue_fraction >= self.policy.shed_queue_fraction:
            return SHEDDING, f"queue at {queue_fraction:.0%} of capacity"
        if breaker_open and drift_status == "trip":
            return SHEDDING, "breaker open with drift tripped"
        reasons = []
        if breaker_open:
            reasons.append("breaker open")
        if drift_status == "trip":
            reasons.append("drift sentinel tripped")
        if queue_fraction >= self.policy.degrade_queue_fraction:
            reasons.append(f"queue at {queue_fraction:.0%} of capacity")
        if reasons:
            return DEGRADED, " + ".join(reasons)
        return HEALTHY, "signals clean"

    def update(
        self,
        breaker_open: bool = False,
        drift_status: str = "ok",
        queue_fraction: float = 0.0,
    ) -> str:
        """Fold one evaluation of the signals into the state machine."""
        self._steps += 1
        target, reason = self._target(breaker_open, drift_status, queue_fraction)
        self._last_signals = {
            "breaker_open": breaker_open,
            "drift_status": drift_status,
            "queue_fraction": queue_fraction,
            "target": target,
        }
        escalating = _RANK[target] > self._last_target_rank
        self._last_target_rank = _RANK[target]
        if _RANK[target] > _RANK[self._state]:
            self._move(target, reason)
            self._calm = 0
        elif _RANK[target] < _RANK[self._state]:
            if escalating:
                # A fresh degradation (e.g. a breaker trip while the
                # SHEDDING step-down is pending) is not a clean
                # evaluation: re-arm the grace counter instead of
                # letting the stale countdown step the service down.
                self._calm = 0
            else:
                self._calm += 1
                if self._calm >= self.policy.recovery_grace:
                    step_down = _BY_RANK[_RANK[self._state] - 1]
                    self._move(
                        step_down,
                        f"recovered after {self._calm} clean evaluations",
                    )
                    self._calm = 0
        else:
            self._calm = 0
        return self._state

    def snapshot(self) -> Dict[str, Any]:
        """Structured view of the machine for dashboards and canaries."""
        return {
            "state": self._state,
            "steps": self._steps,
            "calm": self._calm,
            "n_transitions": len(self.transitions),
            "last_reason": (
                self.transitions[-1].reason if self.transitions else ""
            ),
            "signals": dict(self._last_signals),
        }

    def _move(self, to_state: str, reason: str) -> None:
        self.transitions.append(
            HealthTransition(self._steps, self._state, to_state, reason)
        )
        self._state = to_state

    def reset(self) -> None:
        """Operator override back to HEALTHY (transitions retained)."""
        if self._state != HEALTHY:
            self._move(HEALTHY, "operator reset")
        self._calm = 0


@dataclass(frozen=True)
class FleetHealthPolicy:
    """Replica quorum thresholds for the fleet-level state machine."""

    #: Available-replica fraction below which the fleet is DEGRADED
    #: (and starts shedding a deterministic slice of traffic to protect
    #: the survivors before total failure).
    degraded_quorum: float = 0.75
    #: Consecutive clean evaluations before stepping down one level.
    recovery_grace: int = 3

    def __post_init__(self) -> None:
        if not 0.0 < self.degraded_quorum <= 1.0:
            raise ValueError(
                f"degraded_quorum must be in (0, 1], got {self.degraded_quorum}"
            )
        if self.recovery_grace < 1:
            raise ValueError(
                f"recovery_grace must be >= 1, got {self.recovery_grace}"
            )


@dataclass
class FleetHealthMonitor:
    """HEALTHY -> DEGRADED -> CRITICAL from replica availability.

    The fleet analogue of :class:`HealthMonitor`: one state computed
    from how many replicas can currently take traffic (alive, breaker
    not open, not SHEDDING).  Losing quorum degrades the fleet --
    which widens shedding upstream -- and losing *every* replica is
    CRITICAL, where the fleet serves from the model-free popularity
    fallback rather than dropping pages.  Escalation is immediate;
    de-escalation steps down one level after ``recovery_grace``
    consecutive clean evaluations, with the same re-arm-on-fresh-signal
    hysteresis as the replica machine.
    """

    policy: FleetHealthPolicy = field(default_factory=FleetHealthPolicy)
    _state: str = HEALTHY
    _steps: int = 0
    _calm: int = 0
    _last_target_rank: int = 0
    _last_signals: Dict[str, Any] = field(default_factory=dict)
    transitions: List[HealthTransition] = field(default_factory=list)

    @property
    def state(self) -> str:
        return self._state

    def _target(self, available: int, total: int) -> Tuple[str, str]:
        if total < 1:
            raise ValueError(f"fleet must have >= 1 replica, got {total}")
        if available == 0:
            return CRITICAL, "no replica available"
        fraction = available / total
        if fraction < self.policy.degraded_quorum:
            return DEGRADED, (
                f"{available}/{total} replicas available "
                f"(quorum {self.policy.degraded_quorum:.0%})"
            )
        return HEALTHY, f"{available}/{total} replicas available"

    def update(self, available: int, total: int) -> str:
        """Fold one availability evaluation into the state machine."""
        self._steps += 1
        target, reason = self._target(available, total)
        self._last_signals = {
            "available": available,
            "total": total,
            "target": target,
        }
        escalating = _FLEET_RANK[target] > self._last_target_rank
        self._last_target_rank = _FLEET_RANK[target]
        if _FLEET_RANK[target] > _FLEET_RANK[self._state]:
            self._move(target, reason)
            self._calm = 0
        elif _FLEET_RANK[target] < _FLEET_RANK[self._state]:
            if escalating:
                self._calm = 0
            else:
                self._calm += 1
                if self._calm >= self.policy.recovery_grace:
                    step_down = _FLEET_BY_RANK[_FLEET_RANK[self._state] - 1]
                    self._move(
                        step_down,
                        f"recovered after {self._calm} clean evaluations",
                    )
                    self._calm = 0
        else:
            self._calm = 0
        return self._state

    def snapshot(self) -> Dict[str, Any]:
        """Structured view matching :meth:`HealthMonitor.snapshot`."""
        return {
            "state": self._state,
            "steps": self._steps,
            "calm": self._calm,
            "n_transitions": len(self.transitions),
            "last_reason": (
                self.transitions[-1].reason if self.transitions else ""
            ),
            "signals": dict(self._last_signals),
        }

    def _move(self, to_state: str, reason: str) -> None:
        self.transitions.append(
            HealthTransition(self._steps, self._state, to_state, reason)
        )
        self._state = to_state
