"""Chaos wrapper around ``RankingService.score_candidates``.

Install a :class:`ChaosScoring` on a service and its primary scoring
path fails with a configured probability (and optionally gains extra
latency), exactly as a flaky model server would.  Failures are drawn
from a private seeded generator, so a chaos run is reproducible; the
wrapper shadows the *instance* attribute only, and ``uninstall`` (or
exiting the context manager) restores the pristine method.

This is the proof harness for the serving fallback chain: tests wrap a
service, inject a failure rate, and assert that every request still
returns a full page while the circuit breaker's state is observable.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from repro.reliability.errors import ScoringUnavailableError


class ChaosScoring:
    """Probabilistic failure/latency injector for a ranking service."""

    def __init__(
        self,
        service,
        failure_rate: float = 0.3,
        extra_latency_s: float = 0.0,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= failure_rate <= 1.0:
            raise ValueError(f"failure_rate must be in [0, 1], got {failure_rate}")
        if extra_latency_s < 0:
            raise ValueError(
                f"extra_latency_s must be >= 0, got {extra_latency_s}"
            )
        self.service = service
        self.failure_rate = failure_rate
        self.extra_latency_s = extra_latency_s
        self._rng = np.random.default_rng(seed)
        self._original = None
        self.calls = 0
        self.failures_injected = 0

    # ------------------------------------------------------------------
    def install(self) -> "ChaosScoring":
        """Shadow ``service.score_candidates`` with the chaotic version."""
        if self._original is not None:
            return self
        self._original = self.service.score_candidates

        def chaotic_score_candidates(*args, **kwargs):
            self.calls += 1
            if self.extra_latency_s:
                time.sleep(self.extra_latency_s)
            if self._rng.random() < self.failure_rate:
                self.failures_injected += 1
                raise ScoringUnavailableError(
                    "chaos: injected scoring failure "
                    f"({self.failures_injected}/{self.calls})"
                )
            return self._original(*args, **kwargs)

        self.service.score_candidates = chaotic_score_candidates
        return self

    def uninstall(self) -> None:
        """Restore the original scoring method."""
        if self._original is None:
            return
        # Remove the instance shadow so the class method shows through
        # again (install() stored the bound class method).
        if "score_candidates" in vars(self.service):
            del self.service.score_candidates
        self._original = None

    # ------------------------------------------------------------------
    def __enter__(self) -> "ChaosScoring":
        return self.install()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.uninstall()
