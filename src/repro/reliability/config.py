"""Reliability policies for the training and serving layers.

Two dataclasses, one per layer:

* :class:`ReliabilityConfig` -- handed to ``Trainer``; switches on
  periodic checksummed checkpoints, the loss guard, propensity
  monitoring, and (for tests/drills) a fault injector on the batch
  stream.  ``Trainer(model, config)`` without one behaves exactly as
  before.
* :class:`ServingPolicy` -- handed to ``RankingService``; bounds the
  retry loop and parameterises the circuit breaker guarding the
  primary scoring path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.reliability.faults import FaultInjector
from repro.reliability.guards import LossGuardConfig


@dataclass
class ReliabilityConfig:
    """Fault-tolerance knobs for one training run."""

    #: Directory for rotating checkpoints (None disables checkpointing).
    checkpoint_dir: Optional[str] = None
    #: Also snapshot mid-epoch every N batches (None: epoch ends only).
    checkpoint_every_n_batches: Optional[int] = None
    #: How many snapshots to retain; >= 2 recommended so a corrupt
    #: newest file still leaves a recovery point.
    keep_checkpoints: int = 3
    #: Loss divergence guard (None disables guarding).
    guard: Optional[LossGuardConfig] = field(default_factory=LossGuardConfig)
    #: Warn when more than this fraction of sampled ``o_hat`` sits at
    #: the clip boundary after an epoch.
    propensity_collapse_threshold: float = 0.5
    #: Rows sampled for the propensity check (0 disables the check).
    propensity_check_sample: int = 2048
    #: Batch corruptor for chaos drills (None: clean batches).
    fault_injector: Optional[FaultInjector] = None

    def __post_init__(self) -> None:
        if self.keep_checkpoints < 1:
            raise ValueError(
                f"keep_checkpoints must be >= 1, got {self.keep_checkpoints}"
            )
        if (
            self.checkpoint_every_n_batches is not None
            and self.checkpoint_every_n_batches < 1
        ):
            raise ValueError(
                "checkpoint_every_n_batches must be >= 1 or None, got "
                f"{self.checkpoint_every_n_batches}"
            )
        if not 0.0 < self.propensity_collapse_threshold <= 1.0:
            raise ValueError(
                "propensity_collapse_threshold must be in (0, 1], got "
                f"{self.propensity_collapse_threshold}"
            )
        if self.propensity_check_sample < 0:
            raise ValueError(
                "propensity_check_sample must be >= 0, got "
                f"{self.propensity_check_sample}"
            )


@dataclass(frozen=True)
class ServingPolicy:
    """Degraded-mode behaviour of :class:`RankingService`."""

    #: Retries of the primary scorer after its first failure.
    max_retries: int = 2
    #: Sleep before retry ``i`` is ``backoff_s * backoff_multiplier**i``
    #: (0 disables sleeping -- the right setting for simulations/tests).
    backoff_s: float = 0.0
    backoff_multiplier: float = 2.0
    #: Consecutive primary failures that open the circuit breaker.
    breaker_failure_threshold: int = 5
    #: Seconds the breaker stays open before a half-open probe.
    breaker_recovery_time: float = 30.0
    #: Default per-request deadline in seconds (None: no deadline).
    #: Once the budget is spent, remaining primary retries are skipped
    #: and the request rides the fallback chain immediately.
    deadline_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_s < 0:
            raise ValueError(f"backoff_s must be >= 0, got {self.backoff_s}")
        if self.backoff_multiplier < 1.0:
            raise ValueError(
                f"backoff_multiplier must be >= 1, got {self.backoff_multiplier}"
            )
        if self.breaker_failure_threshold < 1:
            raise ValueError(
                "breaker_failure_threshold must be >= 1, got "
                f"{self.breaker_failure_threshold}"
            )
        if self.breaker_recovery_time < 0:
            raise ValueError(
                "breaker_recovery_time must be >= 0, got "
                f"{self.breaker_recovery_time}"
            )
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError(
                f"deadline_s must be > 0 or None, got {self.deadline_s}"
            )


@dataclass(frozen=True)
class FleetPolicy:
    """Routing and hedging behaviour of a :class:`ServingFleet`.

    The fleet routes with power-of-two-choices on replica queue depth
    (skipping SHEDDING / breaker-open replicas), hedges a failed or
    degraded request once against a *different* replica, and widens
    shedding at the fleet level when replica quorum is lost -- all
    parameterised here.
    """

    #: Hedge attempts after the primary replica fails or serves a
    #: model-free page (each against a replica not yet tried).
    hedge_retries: int = 1
    #: Base pause before a hedge attempt; the actual pause is jittered
    #: by the fleet's seeded RNG and capped at the deadline's remaining
    #: budget (0 disables sleeping -- right for simulations/tests).
    hedge_backoff_s: float = 0.0
    #: Jitter spread: pause = backoff * (1 + jitter * u), u ~ U[0, 1)
    #: drawn from the fleet RNG, so retry schedules are seeded.
    hedge_jitter: float = 0.5
    #: Skip hedging when the deadline has less than this many seconds
    #: left -- a hedge that cannot finish is pure queue pressure.
    hedge_min_remaining_s: float = 0.0
    #: While the fleet is DEGRADED (quorum lost), shed every Nth
    #: request at the fleet door before routing, protecting the
    #: surviving replicas before total failure.
    degraded_shed_stride: int = 4
    #: While the fleet is CRITICAL (no replica available), admit only
    #: every Nth request -- the inverse pattern: most traffic sheds,
    #: and the thin admitted slice rides the popularity fallback.
    critical_shed_stride: int = 2
    #: Available-replica fraction below which the fleet is DEGRADED.
    degraded_quorum: float = 0.75
    #: Consecutive clean evaluations before the fleet steps down.
    recovery_grace: int = 3
    #: Default per-request deadline in seconds (None: no deadline);
    #: propagated into each replica attempt as its remaining budget.
    deadline_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.hedge_retries < 0:
            raise ValueError(
                f"hedge_retries must be >= 0, got {self.hedge_retries}"
            )
        if self.hedge_backoff_s < 0:
            raise ValueError(
                f"hedge_backoff_s must be >= 0, got {self.hedge_backoff_s}"
            )
        if self.hedge_jitter < 0:
            raise ValueError(
                f"hedge_jitter must be >= 0, got {self.hedge_jitter}"
            )
        if self.hedge_min_remaining_s < 0:
            raise ValueError(
                "hedge_min_remaining_s must be >= 0, got "
                f"{self.hedge_min_remaining_s}"
            )
        if self.degraded_shed_stride < 2:
            raise ValueError(
                "degraded_shed_stride must be >= 2 (1 would shed all "
                f"traffic), got {self.degraded_shed_stride}"
            )
        if self.critical_shed_stride < 1:
            raise ValueError(
                "critical_shed_stride must be >= 1, got "
                f"{self.critical_shed_stride}"
            )
        if not 0.0 < self.degraded_quorum <= 1.0:
            raise ValueError(
                f"degraded_quorum must be in (0, 1], got {self.degraded_quorum}"
            )
        if self.recovery_grace < 1:
            raise ValueError(
                f"recovery_grace must be >= 1, got {self.recovery_grace}"
            )
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError(
                f"deadline_s must be > 0 or None, got {self.deadline_s}"
            )


@dataclass(frozen=True)
class AdmissionPolicy:
    """Bounded admission queue in front of :class:`RankingService`.

    The queue is a depth counter standing in for the request queue of a
    real server: every in-flight request holds one slot, a full queue
    sheds arrivals outright, and while the health state machine reports
    SHEDDING only every ``shed_stride``-th request is admitted (a
    deterministic load-shedding pattern that still lets circuit-breaker
    probes through, so the service can recover).
    """

    max_queue_depth: int = 64
    shed_stride: int = 2

    def __post_init__(self) -> None:
        if self.max_queue_depth < 1:
            raise ValueError(
                f"max_queue_depth must be >= 1, got {self.max_queue_depth}"
            )
        if self.shed_stride < 1:
            raise ValueError(f"shed_stride must be >= 1, got {self.shed_stride}")
