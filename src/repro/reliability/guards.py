"""Divergence guards: loss anomaly detection and propensity monitoring.

:class:`LossGuard` watches the per-batch loss stream for two failure
signatures:

* **non-finite** losses (NaN/inf) -- the classic IPW blow-up;
* **spikes** -- a finite loss whose rolling z-score against the recent
  window exceeds a threshold, the early warning that the run is about
  to leave the stable region.

The guard only *detects*; the trainer decides what to do on a trip
(roll back to the last good state, halve the learning rate, record a
:class:`GuardEvent`).  Keeping the policy in the trainer means the
guard is reusable for any loop that produces a scalar series.

``propensity_collapse_fraction`` quantifies the other production
failure mode of causal CVR estimators: ``o_hat`` piling up at the clip
boundary, where ``1/o_hat`` weights are silently saturated and the
debiasing is no longer doing what the math says.
"""

from __future__ import annotations

import math
import warnings
from collections import deque
from dataclasses import asdict, dataclass
from typing import Any, Dict, Optional

import numpy as np

from repro.reliability.errors import PropensityCollapseWarning
from repro.utils.logging import get_logger

logger = get_logger("reliability.guards")


@dataclass(frozen=True)
class LossGuardConfig:
    """Detection thresholds and the trainer's reaction policy."""

    #: Rolling window of recent good losses used for the z-score.
    window: int = 32
    #: Spike threshold: trip when ``(loss - mean) / std`` exceeds this.
    z_threshold: float = 8.0
    #: Minimum good losses observed before spike detection activates
    #: (non-finite detection is always active).
    min_history: int = 8
    #: Multiply the learning rate by this on every trip.
    lr_factor: float = 0.5
    #: Never decay the learning rate below this floor.
    min_lr: float = 1e-6
    #: Abort (``DivergenceError``) after this many trips in one run.
    max_trips: int = 10
    #: Refresh the in-memory rollback state every N clean steps.
    refresh_every: int = 1

    def __post_init__(self) -> None:
        if self.window < 2:
            raise ValueError(f"window must be >= 2, got {self.window}")
        if self.z_threshold <= 0:
            raise ValueError(f"z_threshold must be > 0, got {self.z_threshold}")
        if self.min_history < 2:
            raise ValueError(f"min_history must be >= 2, got {self.min_history}")
        if not 0.0 < self.lr_factor < 1.0:
            raise ValueError(f"lr_factor must be in (0, 1), got {self.lr_factor}")
        if self.max_trips < 1:
            raise ValueError(f"max_trips must be >= 1, got {self.max_trips}")
        if self.refresh_every < 1:
            raise ValueError(f"refresh_every must be >= 1, got {self.refresh_every}")


@dataclass
class GuardEvent:
    """One recorded guard intervention (stored in ``TrainingHistory``)."""

    epoch: int
    batch: int
    reason: str
    value: float
    action: str
    lr_after: Optional[float] = None

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "GuardEvent":
        return cls(**data)


class LossGuard:
    """Streaming anomaly detector over a scalar loss series."""

    def __init__(self, config: Optional[LossGuardConfig] = None) -> None:
        self.config = config or LossGuardConfig()
        self._recent: "deque[float]" = deque(maxlen=self.config.window)
        self.trips = 0

    # ------------------------------------------------------------------
    def check(self, value: float) -> Optional[str]:
        """Classify one loss value; returns a trip reason or None.

        A trip is *not* recorded into the rolling window -- anomalous
        values must never poison the statistics used to detect the next
        anomaly.
        """
        if not math.isfinite(value):
            return "non_finite_loss"
        if len(self._recent) >= self.config.min_history:
            mean = float(np.mean(self._recent))
            std = float(np.std(self._recent))
            z = (value - mean) / max(std, 1e-12)
            if z > self.config.z_threshold:
                return "loss_spike"
        return None

    def record(self, value: float) -> None:
        """Add a known-good loss to the rolling window."""
        self._recent.append(float(value))

    def observe(self, value: float) -> Optional[str]:
        """``check`` then ``record`` when clean; returns the trip reason."""
        reason = self.check(value)
        if reason is None:
            self.record(value)
        else:
            self.trips += 1
        return reason

    @property
    def exhausted(self) -> bool:
        """True once the trip budget is spent."""
        return self.trips >= self.config.max_trips

    @property
    def recent_losses(self) -> list:
        """Copy of the rolling window (checkpointed for exact resume)."""
        return list(self._recent)


# ----------------------------------------------------------------------
def propensity_collapse_fraction(
    propensities: np.ndarray, floor: float
) -> float:
    """Fraction of ``o_hat`` at or beyond the clip boundary.

    Raw (pre-clip) propensities below ``floor`` or above ``1 - floor``
    would be saturated by :func:`repro.core.losses.clip_propensity`;
    a high fraction means the IPW weights are effectively constants and
    the estimator is quietly biased.
    """
    if not 0.0 < floor < 0.5:
        raise ValueError(f"floor must be in (0, 0.5), got {floor}")
    p = np.asarray(propensities, dtype=float)
    if p.size == 0:
        return 0.0
    collapsed = (p <= floor) | (p >= 1.0 - floor)
    return float(collapsed.mean())


def warn_on_propensity_collapse(
    propensities: np.ndarray,
    floor: float,
    threshold: float = 0.5,
    context: str = "",
) -> Optional[float]:
    """Emit a structured :class:`PropensityCollapseWarning` on pile-up.

    Returns the collapsed fraction when it exceeds ``threshold`` (and a
    warning was issued), otherwise None.
    """
    fraction = propensity_collapse_fraction(propensities, floor)
    if fraction <= threshold:
        return None
    message = (
        f"propensity collapse: {fraction:.1%} of o_hat at the clip "
        f"boundary (floor={floor})"
    )
    if context:
        message = f"{message} [{context}]"
    warnings.warn(message, PropensityCollapseWarning, stacklevel=2)
    logger.warning(message)
    return fraction
