"""Exception taxonomy shared across the reliability subsystem.

Every failure the subsystem can surface derives from
:class:`ReliabilityError`, so callers can catch one base class at the
process boundary.  The structured warnings (propensity collapse) are
``Warning`` subclasses rather than exceptions: they signal statistical
degradation that training can survive, not a hard fault.
"""

from __future__ import annotations


class ReliabilityError(RuntimeError):
    """Base class for all reliability-subsystem failures."""


class CheckpointCorruptError(ReliabilityError):
    """A checkpoint failed checksum or structural validation.

    Raised by :mod:`repro.reliability.checkpoint` when a snapshot is
    truncated, bit-flipped, or otherwise unreadable.  Recovery scans
    (``CheckpointManager.latest``) catch this and fall back to the
    previous snapshot instead of propagating.
    """


class DivergenceError(ReliabilityError):
    """Training diverged beyond what the guard policy can absorb.

    Raised by the trainer when :class:`~repro.reliability.guards.LossGuard`
    trips more than ``max_trips`` times in one run -- at that point
    rollback-and-retry is looping, not recovering.
    """


class ScoringUnavailableError(ReliabilityError):
    """The primary scoring path failed to produce scores.

    Raised by the chaos wrapper (injected faults) and used by
    :class:`~repro.simulation.serving.RankingService` to classify any
    scoring exception before engaging the fallback chain.
    """


class RequestShedError(ReliabilityError):
    """Admission control refused the request.

    Raised by :class:`~repro.simulation.serving.RankingService` when the
    bounded admission queue is full or the health state machine is in
    SHEDDING and this request fell on the shed side of the stride.
    Callers treat it as backpressure: retry later or route elsewhere --
    the service is protecting the requests it has already admitted.
    """


class ReplicaUnavailableError(ReliabilityError):
    """No fleet replica could take (or serve) the request.

    Raised internally by :class:`~repro.simulation.fleet.ServingFleet`
    routing when every replica is dead, shedding, or breaker-open, and
    by a replica attempt that failed so the hedge logic can distinguish
    "this replica refused" from a caller error.  The fleet catches it
    and rides its own fallback chain (hedge replica, then the
    popularity scorer) -- it never reaches callers of
    ``ServingFleet.serve_page``.
    """


class WorkerPoolError(ReliabilityError):
    """The data-parallel worker pool can no longer make progress.

    Raised by :class:`~repro.training.parallel.WorkerSupervisor` when
    worker losses push the pool below its ``min_workers`` quorum (and
    single-process fallback is disabled), and by the unsupervised
    strawman pool the moment any worker dies or its watchdog detects a
    stall -- the failure modes supervision exists to absorb.
    """


class RegistryCorruptError(ReliabilityError):
    """A model-registry entry failed digest or structural verification.

    Raised by :class:`~repro.lifecycle.registry.ModelRegistry` when a
    stored parameter blob does not hash-match its manifest entry (bit
    rot, torn write, manual tampering) or the manifest itself is
    unreadable.  The registry never serves or promotes a version that
    fails this check.
    """


class PromotionBlockedError(ReliabilityError):
    """A lifecycle promotion was refused.

    Raised when a caller tries to promote a version the registry cannot
    vouch for: unknown, explicitly rejected by the promotion gate, or
    failing bit-exact load-back verification.  The current champion
    keeps serving.
    """


class PropensityCollapseWarning(UserWarning):
    """The propensity head is piling up at the clip boundary.

    Inverse-propensity weights ``1/o_hat`` diverge as propensities
    collapse toward 0 or 1; clipping bounds the weights but silently
    biases the estimator.  This warning surfaces the pile-up as a
    structured signal instead of letting the bias pass unnoticed.
    """
