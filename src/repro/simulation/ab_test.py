"""The A/B test harness (Table V protocol).

Users are hashed into one bucket per model; every day each bucket
serves a fixed number of page views; the three business metrics are

* **PV-CTR**  -- clicks per served impression;
* **PV-CVR**  -- conversions per served impression;
* **Top-5 PV-CVR** -- conversions per impression among the first five
  display positions ("a maximum of 5 services can be displayed on one
  screen", Section IV-A3).

(The paper normalises by page views; we normalise by impressions --
a fixed multiple of page views -- because impression-level proportions
avoid the ceiling effect that page-level "any click" indicators hit in
a high-CTR service-search world.)

Per-day and overall relative lifts vs the base bucket are computed with
a two-proportion z-test at 95% confidence, mirroring the pink/green
significance shading of Table V.  The z-test treats impressions as
independent, a mild approximation given within-page correlation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.data.synthetic import SyntheticScenario
from repro.metrics.stats import LiftResult, two_proportion_test
from repro.models.base import MultiTaskModel
from repro.reliability.errors import RequestShedError
from repro.simulation.behavior import BehaviorSimulator
from repro.simulation.serving import RankingService
from repro.utils.hashing import stable_bucket
from repro.utils.logging import get_logger

logger = get_logger("simulation")

METRICS = ("pv_ctr", "pv_cvr", "top5_pv_cvr")


@dataclass(frozen=True)
class ABTestConfig:
    """Experiment shape: 7 days x page views, candidate pool size."""

    days: int = 7
    page_views_per_day: int = 2000
    candidates_per_page: int = 30
    page_size: int = 10
    top_k: int = 5
    #: Share the base bucket's CTR estimate across all buckets (the
    #: paper's deployment: buckets differ only in the CVR estimator;
    #: the production CTR model feeding the ranking formula is common).
    shared_ctr: bool = True
    #: User behaviour mode: "independent" per-impression clicks, or
    #: "single_choice" (at most one click per page).
    behavior_mode: str = "independent"
    #: Bucket assignment: "round_robin" (user id modulo bucket count,
    #: the historical default) or "hash" (salted SHA-256 bucketing via
    #: :func:`repro.utils.hashing.stable_bucket`, the same primitive the
    #: canary rollout splits traffic with -- stable under bucket
    #: renames and reproducible across processes).
    assignment: str = "round_robin"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.days < 1 or self.page_views_per_day < 1:
            raise ValueError("days and page_views_per_day must be positive")
        if self.page_size > self.candidates_per_page:
            raise ValueError("page_size cannot exceed candidates_per_page")
        if self.top_k > self.page_size:
            raise ValueError("top_k cannot exceed page_size")
        if self.assignment not in ("round_robin", "hash"):
            raise ValueError(
                "assignment must be 'round_robin' or 'hash', "
                f"got {self.assignment!r}"
            )


@dataclass
class BucketDay:
    """Raw counts for one bucket on one day."""

    page_views: int = 0
    impressions: int = 0
    top_impressions: int = 0
    clicks: int = 0
    conversions: int = 0
    top_conversions: int = 0
    #: Page requests refused by the bucket's serving stack (fleet or
    #: service load shedding); a shed page contributes no impressions.
    shed_pages: int = 0

    def trials(self, metric: str) -> int:
        return {
            "pv_ctr": self.impressions,
            "pv_cvr": self.impressions,
            "top5_pv_cvr": self.top_impressions,
        }[metric]

    def successes(self, metric: str) -> int:
        return {
            "pv_ctr": self.clicks,
            "pv_cvr": self.conversions,
            "top5_pv_cvr": self.top_conversions,
        }[metric]

    def rate(self, metric: str) -> float:
        return self.successes(metric) / max(self.trials(metric), 1)


@dataclass
class ABTestResult:
    """All bucket-day counts plus the day-1 prediction log (Fig. 7)."""

    base_bucket: str
    days: Dict[str, List[BucketDay]]
    day1_cvr_predictions: Dict[str, np.ndarray]
    day1_true_cvr: Dict[str, np.ndarray]
    day1_clicks: Dict[str, np.ndarray]

    # ------------------------------------------------------------------
    def daily_lift(self, bucket: str, metric: str, day: int) -> LiftResult:
        """Relative lift of ``bucket`` vs the base bucket on one day."""
        treat = self.days[bucket][day]
        control = self.days[self.base_bucket][day]
        return two_proportion_test(
            treat.successes(metric),
            treat.trials(metric),
            control.successes(metric),
            control.trials(metric),
        )

    def overall_lift(self, bucket: str, metric: str) -> LiftResult:
        """Relative lift pooled over all days."""
        treat_s = sum(d.successes(metric) for d in self.days[bucket])
        treat_n = sum(d.trials(metric) for d in self.days[bucket])
        base_s = sum(d.successes(metric) for d in self.days[self.base_bucket])
        base_n = sum(d.trials(metric) for d in self.days[self.base_bucket])
        return two_proportion_test(treat_s, treat_n, base_s, base_n)

    def posterior_cvr(self, space: str = "D") -> float:
        """Average true CVR over day-1 impressions, pooled buckets.

        ``space`` selects the entire impression space ``D``, the clicked
        space ``O`` or the unclicked space ``N`` (Fig. 7 reference lines).
        """
        values = np.concatenate(list(self.day1_true_cvr.values()))
        clicks = np.concatenate(list(self.day1_clicks.values()))
        if space == "D":
            return float(values.mean())
        if space == "O":
            return float(values[clicks == 1].mean())
        if space == "N":
            return float(values[clicks == 0].mean())
        raise ValueError(f"space must be 'D', 'O' or 'N', got {space!r}")


class ABTest:
    """Runs the bucketed online experiment."""

    def __init__(
        self,
        models: Dict[str, MultiTaskModel],
        scenario: SyntheticScenario,
        base_bucket: str,
        config: Optional[ABTestConfig] = None,
        services: Optional[Dict[str, object]] = None,
    ) -> None:
        if base_bucket not in models:
            raise KeyError(f"base bucket {base_bucket!r} not among models")
        if len(models) < 2:
            raise ValueError("an A/B test needs at least two buckets")
        self.config = config or ABTestConfig()
        self.scenario = scenario
        self.base_bucket = base_bucket
        if services is not None:
            # Caller-built serving stacks -- anything serve_page-shaped
            # works, including a ServingFleet per bucket, so the Table V
            # protocol can run against a replicated fleet instead of a
            # single service.
            if set(services) != set(models):
                raise ValueError(
                    "services keys must match model buckets: "
                    f"{sorted(services)} vs {sorted(models)}"
                )
            self.services = dict(services)
        else:
            ctr_provider = (
                models[base_bucket] if self.config.shared_ctr else None
            )
            self.services = {
                name: RankingService(
                    model,
                    scenario,
                    page_size=self.config.page_size,
                    ctr_provider=ctr_provider,
                )
                for name, model in models.items()
            }
        self.behavior = BehaviorSimulator(scenario, mode=self.config.behavior_mode)
        # Disjoint user assignment: round-robin (modulo) or salted hash.
        names = sorted(models)
        n_users = scenario.config.n_users
        if self.config.assignment == "hash":
            buckets = np.array(
                [
                    stable_bucket(u, len(names), salt=self.config.seed)
                    for u in range(n_users)
                ]
            )
            self._bucket_users = {
                name: np.arange(n_users)[buckets == i]
                for i, name in enumerate(names)
            }
        else:
            self._bucket_users = {
                name: np.arange(n_users)[np.arange(n_users) % len(names) == i]
                for i, name in enumerate(names)
            }
        empty = [n for n, u in self._bucket_users.items() if len(u) == 0]
        if empty:
            raise ValueError(
                f"bucket(s) {empty} received no users; increase n_users "
                "or change the assignment seed"
            )

    # ------------------------------------------------------------------
    def run(self) -> ABTestResult:
        """Roll out the full experiment; returns counts and day-1 logs."""
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        days = {name: [BucketDay() for _ in range(cfg.days)] for name in self.services}
        day1_preds = {name: [] for name in self.services}
        day1_true = {name: [] for name in self.services}
        day1_clicks = {name: [] for name in self.services}

        n_items = self.scenario.config.n_items
        for day in range(cfg.days):
            for name, service in self.services.items():
                users = self._bucket_users[name]
                record = days[name][day]
                for _ in range(cfg.page_views_per_day):
                    user = int(users[rng.integers(0, len(users))])
                    candidates = rng.choice(
                        n_items, size=cfg.candidates_per_page, replace=False
                    )
                    try:
                        page, cvr_pred = service.serve_page(
                            user, candidates, rng
                        )
                    except RequestShedError:
                        # A shed page is a real production outcome, not
                        # an experiment failure: count it and move on.
                        record.shed_pages += 1
                        continue
                    outcome = self.behavior.roll_out(user, page, rng)
                    top = outcome.positions < cfg.top_k
                    record.page_views += 1
                    record.impressions += len(page)
                    record.top_impressions += int(top.sum())
                    record.clicks += int(outcome.clicks.sum())
                    record.conversions += int(outcome.conversions.sum())
                    record.top_conversions += int(outcome.conversions[top].sum())
                    if day == 0:
                        day1_preds[name].append(cvr_pred)
                        day1_true[name].append(outcome.true_cvr)
                        day1_clicks[name].append(outcome.clicks)
            logger.debug("day %d complete", day)

        return ABTestResult(
            base_bucket=self.base_bucket,
            days=days,
            day1_cvr_predictions={
                k: np.concatenate(v) for k, v in day1_preds.items()
            },
            day1_true_cvr={k: np.concatenate(v) for k, v in day1_true.items()},
            day1_clicks={k: np.concatenate(v) for k, v in day1_clicks.items()},
        )
