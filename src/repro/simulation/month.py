"""A deterministic "production month": multi-tenant serving under drift.

Everything this repository builds -- the DCMT estimators, the serving
fleet, quarantine ingestion, delayed-feedback correction, drift
monitoring, and the model lifecycle -- exists because a post-click
conversion system has to *keep working while the world changes under
it*.  This module is the closing integration: a time-stepped simulation
where the six Table II scenario presets run as concurrent tenants, each
behind its own :class:`~repro.simulation.fleet.ServingFleet`, while a
seeded :mod:`~repro.data.drift_schedule` moves the ground truth --
seasonal CTR swings, a logging-policy ``position_bias`` jump, catalog
churn injecting out-of-vocabulary item ids, and a mid-month
``hidden_confounder_*`` shift that silently invalidates every
propensity the champion was calibrated on.

Each simulated day, per tenant:

1. **Drift applies.**  Overrides due today fold into the tenant's
   :class:`~repro.data.synthetic.ScenarioConfig` and the world is
   rebuilt.  Rebuilding recalibrates intercepts but never re-draws
   latent vectors (same seed, same draw shapes), so features stay
   bit-identical across drift -- only behaviour moves.
2. **Traffic serves** through the fleet (power-of-two routing, hedged
   retries, optional chaos-drill faults layered on), and the served
   pages -- plus a small policy-free exploration slice, the sliver of
   traffic every production ranker reserves -- accrete into the
   tenant's log with exposure timestamps and sampled
   conversion-attribution delays.
3. **Ingestion gates** the day's log through
   :func:`~repro.data.ingest.quarantine_oov_rows`: churn-day rows
   referencing unseen item ids are held, the embedding vocabulary is
   grown in place (zero rows; bit-identical scores for existing ids),
   the grown champion is re-published via
   :meth:`~repro.lifecycle.manager.ModelLifecycleManager.adopt`, and
   the held rows are re-admitted.
4. **Monitors watch.**  A :class:`~repro.reliability.drift.DriftSentinel`
   frozen on a policy-free reference probe watches the exploration
   slice's features and prediction distributions (so the serving
   policy's selection warp never reads as drift); a
   :class:`~repro.reliability.drift.CalibrationMonitor` pairs the
   champion's predicted CTR on live traffic with realised clicks,
   baselined against the champion's own steady-state selection gap --
   the only signal that sees a confounder shift, which by construction
   moves *no* observable feature distribution.
5. **The lifecycle decides.**  In ``managed`` mode a tripped monitor
   (or the retrain cadence) triggers retrain -> gate -> fleet canary ->
   promote/demote, with the delayed-feedback inverse-maturation
   correction (:func:`~repro.simulation.feedback.lifecycle_retrain_view`)
   applied to the censored training view.  Two strawmen bracket it:
   ``never_retrain`` ships the day-0 champion forever, and
   ``always_promote`` retrains on a fast cadence and adopts every
   candidate unconditionally -- *without* the maturation correction,
   i.e. "blindly trust fresh data", the classic delayed-feedback trap.

The whole run emits a wall-clock-free transcript keyed by
``(day, tenant, event)`` that is bit-identical across same-seed runs
(all time comes from injected tick clocks; all randomness from
``SeedSequence([seed, tenant, day, stream])``), plus an **oracle-regret
report**: each day the serving champion is scored on a policy-free
evaluation set against the generator's true conversion probabilities
(the oracle ceiling -- knowledge only a synthetic world can provide),
and :func:`compare_month_policies` checks that the managed lifecycle
accumulates less regret than both strawmen.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.dataset import InteractionDataset
from repro.data.drift_schedule import (
    CATALOG_CHURN,
    DriftEvent,
    DriftSchedulePolicy,
    build_drift_schedule,
    config_for_day,
)
from repro.data.ingest import QuarantineStore, quarantine_oov_rows
from repro.data.scenarios import SCENARIO_PRESETS, scenario_config
from repro.data.schema import FeatureSchema
from repro.data.synthetic import SyntheticScenario
from repro.lifecycle.canary import CanaryPolicy
from repro.lifecycle.gate import GatePolicy, PromotionGate
from repro.lifecycle.manager import ModelLifecycleManager
from repro.lifecycle.registry import ModelRegistry
from repro.metrics.ranking import auc
from repro.models import ModelConfig, build_model
from repro.reliability.config import FleetPolicy
from repro.reliability.drift import (
    CalibrationMonitor,
    CalibrationThresholds,
    DriftReference,
    DriftSentinel,
    DriftThresholds,
    STATUS_TRIP,
)
from repro.reliability.errors import RequestShedError
from repro.reliability.faults import FleetFaultSpec, build_fleet_fault_schedule
from repro.simulation.behavior import BehaviorSimulator
from repro.simulation.feedback import lifecycle_retrain_view
from repro.simulation.fleet import FleetChaosDrill, ServingFleet
from repro.training import TrainConfig, fit_model
from repro.utils.logging import get_logger, log_event

logger = get_logger("simulation.month")

#: Lifecycle policies the month can run under.
MANAGED = "managed"
NEVER_RETRAIN = "never_retrain"
ALWAYS_PROMOTE = "always_promote"
MODES = (MANAGED, NEVER_RETRAIN, ALWAYS_PROMOTE)

#: All six Table II tenants (see ``repro.data.scenarios``).
ALL_TENANTS = tuple(sorted(SCENARIO_PRESETS))


# ---------------------------------------------------------------------------
# Configuration
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class MonthConfig:
    """Shape of one simulated production month.

    Defaults target the full six-tenant, 28-day report run; tests use
    two tenants and a short month.  Every random draw in the simulation
    descends from ``seed`` through keyed ``SeedSequence`` streams, so
    two runs with equal configs produce bit-identical transcripts.
    """

    tenants: Tuple[str, ...] = ALL_TENANTS
    days: int = 28
    seed: int = 0
    mode: str = MANAGED

    # -- world scale (presets are shrunk to these caps so a month of
    # -- serving and ~a dozen retrains stays tractable) ----------------
    n_users: int = 240
    n_items: int = 320
    #: Event-rate compression: the Table II presets' production rates
    #: (CTR ~5-10%, CVR-given-click ~16-30%) would leave a tractable
    #: month with a handful of conversions -- pure noise for any CVR
    #: estimator.  Each tenant's target rates are floored at these
    #: values so a simulated day carries enough events to learn from;
    #: tenants whose presets already exceed the floor keep their own.
    min_target_ctr: float = 0.30
    min_target_cvr: float = 0.30
    #: Rows in the organic bootstrap log the day-0 champion trains on.
    bootstrap_rows: int = 3000
    #: Age of the bootstrap log in days (sets t0; most bootstrap
    #: conversions have matured by the time the month starts).
    bootstrap_age_days: int = 3

    # -- serving -------------------------------------------------------
    pages_per_day: int = 90
    candidates_per_page: int = 24
    page_size: int = 6
    n_replicas: int = 2
    #: Injected-clock seconds between consecutive requests (lets open
    #: breakers cool down and probe half-open across a day).
    request_interval_s: float = 1.0
    #: Daily policy-free exploration slice (uniform users, popularity
    #: exposure, no model in the loop).  Production systems reserve a
    #: sliver of traffic exactly like this: it is the only slice whose
    #: distribution the serving policy cannot warp, so it feeds the
    #: drift sentinel and de-biases the retrain window.
    exploration_rows_per_day: int = 140
    #: Rows in the policy-free probe each drift reference is captured
    #: on (same generator as the exploration slice, so pre-drift
    #: sentinel observations match the reference in distribution).
    reference_rows: int = 600

    # -- delayed conversion feedback -----------------------------------
    #: Mean conversion-attribution delay.  Long enough that a fast
    #: retrain cadence sees heavily censored recent days: training
    #: those rows as real negatives (the ``always_promote`` strawman)
    #: is the classic delayed-feedback trap the managed lifecycle's
    #: inverse-maturation correction exists to avoid.
    delay_mean_hours: float = 36.0
    #: Item-dependence of the delay.  Uniform censoring only rescales
    #: scores; *item-varying* censoring corrupts the ranking itself,
    #: which is what the oracle-AUC regret measures.
    delay_item_spread: float = 0.9
    weight_cap: float = 20.0

    # -- retraining ----------------------------------------------------
    retrain_every_days: int = 7
    #: Cadence of the ``always_promote`` strawman.
    always_retrain_every_days: int = 2
    #: Minimum days between triggered retrains (monitor trips latch
    #: until a promotion resets them; without a cooldown one shift
    #: would retrain daily).
    retrain_cooldown_days: int = 2
    train_window_days: int = 14
    model_name: str = "dcmt"
    embedding_dim: int = 8
    hidden_sizes: Tuple[int, ...] = (32, 16)
    epochs: int = 4
    batch_size: int = 256
    learning_rate: float = 0.003
    compile_plan: bool = True

    # -- evaluation / lifecycle ----------------------------------------
    eval_rows: int = 600
    canary_pages: int = 60
    canary_traffic_fraction: float = 0.35
    canary_min_requests: int = 12
    #: Days after a promotion during which a severe calibration
    #: deviation rolls the promotion back (the new champion made live
    #: traffic *worse*).
    rollback_grace_days: int = 2
    #: Calibration drift (vs the previous champion's baseline) that
    #: triggers a rollback.  Deliberately much wider than the retrain
    #: trip: successors legitimately carry a somewhat different
    #: selection gap, and reverting a promotion erases adaptation --
    #: reserve it for promotions that are actually broken.
    rollback_gap_trip: float = 0.12

    # -- monitors ------------------------------------------------------
    calibration_gap_warn: float = 0.025
    calibration_gap_trip: float = 0.05
    calibration_min_samples: int = 300
    calibration_window: int = 1200

    # -- drift & faults ------------------------------------------------
    drift: DriftSchedulePolicy = field(default_factory=DriftSchedulePolicy)
    #: Optional replica-fault layer applied to every tenant's fleet.
    fault_spec: Optional[FleetFaultSpec] = None

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {self.mode!r}")
        if self.days < 1:
            raise ValueError(f"days must be >= 1, got {self.days}")
        if not self.tenants:
            raise ValueError("at least one tenant is required")
        unknown = [t for t in self.tenants if t not in SCENARIO_PRESETS]
        if unknown:
            raise ValueError(
                f"unknown tenants {unknown}; choose from {ALL_TENANTS}"
            )
        if self.pages_per_day < 1 or self.canary_pages < 1:
            raise ValueError("pages_per_day and canary_pages must be >= 1")
        if self.page_size > self.candidates_per_page:
            raise ValueError("page_size cannot exceed candidates_per_page")


# ---------------------------------------------------------------------------
# Transcript events
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class MonthEvent:
    """One ``(day, tenant, event)`` transcript entry (no wall clock)."""

    day: int
    tenant: str
    kind: str
    detail: str = ""

    def line(self) -> str:
        return (
            f"[day {self.day:02d}] {self.tenant:<14s} "
            f"{self.kind:<20s} {self.detail}"
        ).rstrip()


# ---------------------------------------------------------------------------
# Reports
# ---------------------------------------------------------------------------
@dataclass
class MonthReport:
    """Everything one month run produced, as comparable values."""

    mode: str
    seed: int
    days: int
    tenants: Tuple[str, ...]
    events: List[MonthEvent]
    #: One row per (day, tenant): serving counters, monitor statuses,
    #: and the day's oracle-regret measurement.
    daily: List[Dict[str, object]]
    tenant_summary: Dict[str, Dict[str, object]]
    #: Final fleet snapshot per tenant.
    fleet: Dict[str, Dict[str, object]]
    #: HEALTHY/DEGRADED/... spans per tenant, straight from
    #: :meth:`~repro.simulation.fleet.FleetStats.health_spans` -- the
    #: dashboard surface, no event scraping.
    health_spans: Dict[str, List[Dict[str, object]]]

    def transcript_lines(self) -> List[str]:
        return [event.line() for event in self.events]

    def transcript(self) -> str:
        """The whole month as one stable string (bit-comparable)."""
        return "\n".join(self.transcript_lines())

    @property
    def total_regret(self) -> float:
        """Summed daily oracle CVR-AUC regret across tenants."""
        return float(sum(row["regret"] for row in self.daily))

    def regret_by_tenant(self) -> Dict[str, float]:
        out: Dict[str, float] = {t: 0.0 for t in self.tenants}
        for row in self.daily:
            out[row["tenant"]] += float(row["regret"])
        return {t: float(v) for t, v in out.items()}

    def to_dict(self) -> Dict[str, object]:
        return {
            "mode": self.mode,
            "seed": self.seed,
            "days": self.days,
            "tenants": list(self.tenants),
            "total_regret": self.total_regret,
            "regret_by_tenant": self.regret_by_tenant(),
            "tenant_summary": self.tenant_summary,
            "daily": self.daily,
            "fleet": self.fleet,
            "health_spans": self.health_spans,
            "transcript": self.transcript_lines(),
        }


@dataclass
class MonthComparison:
    """Managed lifecycle vs the two strawmen on the same seeded month."""

    reports: Dict[str, MonthReport]

    def regrets(self) -> Dict[str, float]:
        return {mode: r.total_regret for mode, r in self.reports.items()}

    @property
    def managed_wins(self) -> bool:
        """Does the managed run beat *both* strawmen on total regret?"""
        regrets = self.regrets()
        managed = regrets[MANAGED]
        return all(
            managed < regrets[mode]
            for mode in regrets
            if mode != MANAGED
        )

    def to_dict(self) -> Dict[str, object]:
        managed = self.reports[MANAGED]
        return {
            "seed": managed.seed,
            "days": managed.days,
            "tenants": list(managed.tenants),
            "total_regret": self.regrets(),
            "regret_by_tenant": {
                mode: report.regret_by_tenant()
                for mode, report in self.reports.items()
            },
            "managed_wins": self.managed_wins,
            "tenant_summary": {
                mode: report.tenant_summary
                for mode, report in self.reports.items()
            },
            # The managed run's full decision trail rides along so the
            # committed artifact is self-auditing: every drift event,
            # monitor trip, gate verdict, promotion, and rollback, in a
            # wall-clock-free form that is bit-identical across
            # same-seed runs.
            "managed_transcript": managed.transcript_lines(),
            "managed_health_spans": managed.health_spans,
        }


# ---------------------------------------------------------------------------
# Internals
# ---------------------------------------------------------------------------
class _TickClock:
    """Injected monotonic clock: a mutable ``now`` plus ``__call__``.

    Breakers, deadlines, and chaos-drill slowdowns all read (and
    advance) this object, so the month consumes zero wall-clock time
    and two same-seed runs see identical timestamps.
    """

    def __init__(self, start: float = 0.0) -> None:
        self.now = float(start)

    def __call__(self) -> float:
        return self.now


def _schema_with_item_vocab(schema: FeatureSchema, vocab: int) -> FeatureSchema:
    """The world schema with ``item_id``'s vocabulary capped at ``vocab``.

    The world is built once with catalog headroom (so latent vectors
    never re-draw across churn); the *serving* vocabulary starts at the
    base catalog and grows when churn lands.
    """
    sparse = [
        replace(f, vocab_size=vocab) if f.name == "item_id" else f
        for f in schema.sparse
    ]
    return FeatureSchema(sparse=sparse, dense=list(schema.dense))


def _concat_datasets(parts: Sequence[InteractionDataset]) -> InteractionDataset:
    """Row-concatenate logs that share one schema and column set."""
    if len(parts) == 1:
        return parts[0]
    first = parts[0]

    def cat(pick):
        columns = [pick(p) for p in parts]
        if any(c is None for c in columns):
            return None
        return np.concatenate(columns)

    return InteractionDataset(
        name=first.name,
        schema=first.schema,
        sparse={
            k: np.concatenate([p.sparse[k] for p in parts])
            for k in first.sparse
        },
        dense={
            k: np.concatenate([p.dense[k] for p in parts])
            for k in first.dense
        },
        clicks=cat(lambda p: p.clicks),
        conversions=cat(lambda p: p.conversions),
        oracle_cvr=cat(lambda p: p.oracle_cvr),
        exposure_times=cat(lambda p: p.exposure_times),
        conversion_times=cat(lambda p: p.conversion_times),
    )


@dataclass
class _Tenant:
    """Everything one tenant carries through the month."""

    name: str
    index: int
    events: List[DriftEvent]
    world_base: object  # ScenarioConfig with catalog headroom
    world: SyntheticScenario
    behavior: BehaviorSimulator
    schema: FeatureSchema
    vocab: int
    active_items: int
    registry: ModelRegistry
    manager: ModelLifecycleManager
    clock: _TickClock
    train_config: TrainConfig
    model_config: ModelConfig
    calibration: CalibrationMonitor
    fleet: Optional[ServingFleet] = None
    drill: Optional[FleetChaosDrill] = None
    sentinel: Optional[DriftSentinel] = None
    quarantine: QuarantineStore = field(default_factory=QuarantineStore)
    #: Accreted logs: ``(day, dataset)``; day -1 is the bootstrap log.
    log: List[Tuple[int, InteractionDataset]] = field(default_factory=list)
    eval_set: Optional[InteractionDataset] = None
    eval_oracle: Optional[np.ndarray] = None
    request_step: int = 0
    last_retrain_day: int = -10
    promoted_day: Optional[int] = None
    prev_champion: Optional[str] = None
    #: Item vocabulary each published version was built against
    #: (rollback across a vocabulary growth is a shape mismatch).
    version_vocab: Dict[str, int] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)

    _model_name: str = "dcmt"

    def factory(self):
        """Build a fresh model against the *current* serving schema.

        The closure nature matters: after catalog churn grows
        ``self.schema``, registry loads and retrains automatically
        target the grown vocabulary.
        """
        return build_model(self._model_name, self.schema, self.model_config)

    def bump(self, key: str, by: int = 1) -> None:
        self.counters[key] = self.counters.get(key, 0) + by


class MonthSimulation:
    """Drives one seeded production month under one lifecycle mode."""

    def __init__(
        self, config: MonthConfig, workdir: "Path | str | None" = None
    ) -> None:
        self.config = config
        if workdir is None:
            self._tmp = tempfile.TemporaryDirectory(prefix="month_")
            workdir = self._tmp.name
        self.workdir = Path(workdir)
        self.events: List[MonthEvent] = []
        self.daily: List[Dict[str, object]] = []
        self.tenants: List[_Tenant] = []
        #: Hours on the maturation clock at day 0 of the month.
        self.t0_hours = float(config.bootstrap_age_days * 24)

    # -- event plumbing -------------------------------------------------
    def _emit(self, day: int, tenant: str, kind: str, detail: str = "") -> None:
        self.events.append(MonthEvent(day, tenant, kind, detail))

    def _rng(self, tenant: _Tenant, day: int, stream: int) -> np.random.Generator:
        return np.random.default_rng(
            np.random.SeedSequence(
                [self.config.seed, tenant.index, day + 1, stream]
            )
        )

    # -- world construction ---------------------------------------------
    def _build_tenants(self) -> None:
        cfg = self.config
        bases = {}
        for name in cfg.tenants:
            preset = SCENARIO_PRESETS[name]
            bases[name] = scenario_config(
                name,
                n_users=min(preset.n_users, cfg.n_users),
                n_items=min(preset.n_items, cfg.n_items),
                n_train=cfg.bootstrap_rows,
                n_test=max(cfg.eval_rows, 1),
                target_ctr=max(preset.target_ctr, cfg.min_target_ctr),
                target_cvr_given_click=max(
                    preset.target_cvr_given_click, cfg.min_target_cvr
                ),
                conversion_delay_mean_hours=cfg.delay_mean_hours,
                conversion_delay_item_spread=cfg.delay_item_spread,
                log_span_hours=self.t0_hours,
            )
        schedule = build_drift_schedule(
            cfg.tenants, bases, cfg.seed, cfg.drift.clipped_to(cfg.days)
        )
        order = {name: i for i, name in enumerate(sorted(cfg.tenants))}
        for name in cfg.tenants:
            base = bases[name]
            events = schedule[name]
            headroom = sum(
                e.new_items for e in events if e.kind == CATALOG_CHURN
            )
            # Build the world ONCE with catalog headroom: rebuilds under
            # drift then keep every latent draw bit-identical, and churn
            # becomes pure vocabulary growth.
            world_base = base.with_overrides(n_items=base.n_items + headroom)
            world = SyntheticScenario(world_base)
            schema = _schema_with_item_vocab(world.schema, base.n_items)
            model_config = ModelConfig(
                embedding_dim=cfg.embedding_dim,
                hidden_sizes=cfg.hidden_sizes,
                seed=cfg.seed + order[name],
            )
            train_config = TrainConfig(
                epochs=cfg.epochs,
                batch_size=cfg.batch_size,
                learning_rate=cfg.learning_rate,
                compile_plan=cfg.compile_plan,
                seed=cfg.seed + order[name],
            )
            registry = ModelRegistry(self.workdir / f"registry_{name}")
            tenant = _Tenant(
                name=name,
                index=order[name],
                events=events,
                world_base=world_base,
                world=world,
                behavior=BehaviorSimulator(world),
                schema=schema,
                vocab=base.n_items,
                active_items=base.n_items,
                registry=registry,
                manager=None,  # set below (factory closes over tenant)
                clock=_TickClock(),
                train_config=train_config,
                model_config=model_config,
                calibration=CalibrationMonitor(
                    f"{name}:ctr",
                    CalibrationThresholds(
                        gap_warn=cfg.calibration_gap_warn,
                        gap_trip=cfg.calibration_gap_trip,
                        min_samples=cfg.calibration_min_samples,
                    ),
                    window=cfg.calibration_window,
                    # Serving traffic carries a steady-state selection
                    # gap (ranking selects predictions that overshoot);
                    # alert on deviation from the champion's own
                    # baseline, not on the selection effect itself.
                    auto_baseline=True,
                ),
            )
            tenant._model_name = cfg.model_name
            # The gate's shadow-drift veto and the canary's candidate
            # sentinel compare the candidate's predictions against the
            # *previous* champion's frozen reference.  In a month whose
            # entire point is that the world drifts, a retrained
            # candidate predicting differently is the desired outcome,
            # not a fault -- measured PSI for a legitimate adaptation
            # runs 3-17 here.  Park both vetoes out of reach and let
            # the gate's AUC/ECE/sanity checks plus the canary's live
            # health/breaker verdict do the protecting.
            unbinding_drift = DriftThresholds(
                psi_warn=25.0,
                psi_trip=30.0,
                ks_warn=1.25,
                ks_trip=1.5,
                min_samples=1,
            )
            tenant.manager = ModelLifecycleManager(
                registry,
                tenant.factory,
                gate=PromotionGate(
                    GatePolicy(
                        max_auc_regression=0.02,
                        max_ece_increase=0.05,
                        drift=unbinding_drift,
                    )
                ),
                canary_policy=CanaryPolicy(
                    traffic_fraction=cfg.canary_traffic_fraction,
                    min_requests=cfg.canary_min_requests,
                    max_degraded_fraction=0.25,
                    salt=cfg.seed + tenant.index,
                ),
                canary_drift_thresholds=unbinding_drift,
            )
            self.tenants.append(tenant)

    def _organic_log(self, t: _Tenant, n: int, rng, t_lo: float, t_hi: float,
                     day: int) -> InteractionDataset:
        """Policy-free exposure rows over the active catalog.

        Popularity-weighted item exposure (no model in the loop), true
        click/conversion sampling from the *current* world, exposure
        timestamps uniform on ``[t_lo, t_hi)``, and attribution delays
        from the item-dependent delay model.
        """
        world = t.world
        cfg = world.config
        users = rng.integers(0, cfg.n_users, size=n)
        pop = world.item_popularity[: t.active_items]
        items = rng.choice(t.active_items, size=n, p=pop / pop.sum())
        positions = rng.integers(0, cfg.position_count, size=n)
        hidden = world.sample_hidden(n, rng)
        ctr = world.true_ctr(users, items, positions, hidden)
        cvr = world.true_cvr(users, items, hidden)
        clicks = (rng.random(n) < ctr).astype(np.int64)
        conversions = clicks * (rng.random(n) < cvr).astype(np.int64)
        sparse, dense = world.features_for(users, items, positions, rng)
        exposure = np.sort(t_lo + rng.random(n) * (t_hi - t_lo))
        delays = world.sample_conversion_delays(items, rng)
        conv_times = np.where(
            conversions == 1, exposure + delays, np.nan
        )
        return InteractionDataset(
            name=f"{t.name}-organic{day}",
            schema=world.schema,
            sparse=sparse,
            dense=dense,
            clicks=clicks,
            conversions=conversions,
            oracle_cvr=cvr,
            exposure_times=exposure,
            conversion_times=conv_times,
        )

    def _refresh_eval_set(self, t: _Tenant, day: int) -> None:
        """Policy-free oracle evaluation set over the current world.

        Uniform user/item/position exposure, labels sampled from the
        true probabilities; ``eval_oracle`` keeps the true CVR values
        themselves -- the ceiling scorer no estimator can beat except
        by luck.
        """
        cfg = self.config
        rng = self._rng(t, day, 4)
        world = t.world
        n = cfg.eval_rows
        users = rng.integers(0, world.config.n_users, size=n)
        items = rng.integers(0, t.active_items, size=n)
        positions = rng.integers(0, world.config.position_count, size=n)
        hidden = world.sample_hidden(n, rng)
        ctr = world.true_ctr(users, items, positions, hidden)
        cvr = world.true_cvr(users, items, hidden)
        clicks = (rng.random(n) < ctr).astype(np.int64)
        oracle_conv = (rng.random(n) < cvr).astype(np.int64)
        sparse, dense = world.features_for(users, items, positions, rng)
        t.eval_set = InteractionDataset(
            name=f"{t.name}-eval{day}",
            schema=world.schema,
            sparse=sparse,
            dense=dense,
            clicks=clicks,
            conversions=clicks * oracle_conv,
            oracle_ctr=ctr,
            oracle_cvr=cvr,
            oracle_conversion=oracle_conv,
        )
        t.eval_oracle = cvr

    # -- lifecycle helpers ----------------------------------------------
    def _roll_fleet(self, t: _Tenant) -> None:
        """Swap every replica to a fresh copy of the current champion."""
        champion = t.manager.champion
        for replica in t.fleet.replicas:
            replica.service.swap_model(
                t.registry.load_model(champion.version, t.factory)
            )
        t.fleet.version = champion.version

    def _reset_monitors(self, t: _Tenant, keep_baseline: bool = False) -> None:
        """Re-arm monitors on the new champion's calibration/reference.

        ``keep_baseline=True`` (the promotion path) holds the previous
        champion's calibration baseline through the rollback grace
        window, so a successor that makes live traffic *worse* trips
        against its predecessor's steady state instead of quietly
        baselining its own damage.
        """
        t.calibration.reset(keep_baseline=keep_baseline)
        reference = t.manager.champion_reference()
        t.sentinel = (
            None if reference is None else DriftSentinel(reference)
        )

    def _capture_reference(
        self, t: _Tenant, model, day: int
    ) -> DriftReference:
        """Freeze the model's drift reference on a policy-free probe.

        The sentinel compares serving-time observations against this
        snapshot; capturing it on the same organic distribution the
        daily exploration slice draws from means a quiet world keeps
        the sentinel quiet, and only genuine movement registers.
        """
        cfg = self.config
        t_lo = self.t0_hours + day * 24.0
        probe = self._organic_log(
            t, cfg.reference_rows, self._rng(t, day, 6),
            t_lo, t_lo + 24.0, day,
        )
        return DriftReference.capture(
            model, probe, sample=min(1024, len(probe)), seed=cfg.seed
        )

    def _train_candidate(self, t: _Tenant, day: int, correction: str):
        """Fit a fresh model on the censored training window."""
        cfg = self.config
        now = self.t0_hours + (day + 1) * 24.0
        window_start = day - cfg.train_window_days + 1
        # The bootstrap log (day -1) ages out of the window like any
        # other day; keeping pre-drift rows forever would anchor every
        # retrain to the stale world.
        parts = [ds for d, ds in t.log if d >= window_start]
        view = lifecycle_retrain_view(
            t.world,
            _concat_datasets(parts),
            now,
            correction=correction,
            weight_cap=cfg.weight_cap,
        )
        model = t.factory()
        fit_model(model, view, t.train_config)
        reference = self._capture_reference(t, model, day)
        return model, view, reference

    def _record_version(self, t: _Tenant, version: str) -> None:
        t.version_vocab[version] = t.vocab

    def _serve_block(
        self,
        t: _Tenant,
        day: int,
        n_pages: int,
        rng: np.random.Generator,
        serve_fn,
        apply_faults: bool,
    ):
        """Serve ``n_pages`` requests; returns logged arrays + counters."""
        cfg = self.config
        users: List[int] = []
        items: List[np.ndarray] = []
        positions: List[np.ndarray] = []
        clicks: List[np.ndarray] = []
        conversions: List[np.ndarray] = []
        cvrs: List[np.ndarray] = []
        shed = 0
        n_candidates = min(cfg.candidates_per_page, t.active_items)
        for _ in range(n_pages):
            step = t.request_step
            t.request_step += 1
            if apply_faults and t.drill is not None:
                for line in t.drill._apply_faults(step):
                    self._emit(day, t.name, "fault", line)
            t.clock.now += cfg.request_interval_s
            user = int(rng.integers(0, t.world.config.n_users))
            candidates = rng.choice(
                t.active_items, size=n_candidates, replace=False
            )
            try:
                page, _ = serve_fn(user, candidates, rng)
            except RequestShedError:
                shed += 1
                continue
            outcome = t.behavior.roll_out(user, page, rng)
            users.append(np.full(len(page), user, dtype=np.int64))
            items.append(outcome.items)
            positions.append(outcome.positions)
            clicks.append(outcome.clicks)
            conversions.append(outcome.conversions)
            cvrs.append(outcome.true_cvr)
        if not users:
            return None, shed
        arrays = tuple(
            np.concatenate(part)
            for part in (users, items, positions, clicks, conversions, cvrs)
        )
        return arrays, shed

    def _log_dataset(
        self, t: _Tenant, day: int, arrays, rng: np.random.Generator, tag: str
    ) -> InteractionDataset:
        """Materialise one serving block as a timestamped log slice."""
        users, items, positions, clicks, conversions, cvr = arrays
        world = t.world
        sparse, dense = world.features_for(users, items, positions, rng)
        t_lo = self.t0_hours + day * 24.0
        exposure = np.sort(t_lo + rng.random(len(users)) * 24.0)
        delays = world.sample_conversion_delays(items, rng)
        conv_times = np.where(conversions == 1, exposure + delays, np.nan)
        return InteractionDataset(
            name=f"{t.name}-{tag}{day}",
            schema=world.schema,
            sparse=sparse,
            dense=dense,
            clicks=clicks.astype(np.int64),
            conversions=conversions.astype(np.int64),
            oracle_cvr=cvr,
            exposure_times=exposure,
            conversion_times=conv_times,
        )

    def _quarantine(
        self, t: _Tenant, day: int, dataset: InteractionDataset
    ) -> Tuple[InteractionDataset, Optional[InteractionDataset]]:
        """Quarantine-gate one log slice against the serving vocabulary.

        Rows referencing item ids beyond the vocabulary are held (with
        provenance) rather than dropped, so vocabulary growth can
        re-admit exactly these rows.
        """
        admitted, held, t.quarantine = quarantine_oov_rows(
            dataset, {"item_id": t.vocab}, t.quarantine
        )
        if held is not None:
            t.bump("quarantined", len(held))
            self._emit(
                day, t.name, "quarantine",
                f"held={len(held)} admitted={len(admitted)} "
                "reason=oov_item_id",
            )
        return admitted, held

    def _grow_vocab(self, t: _Tenant, day: int) -> None:
        """Grow the serving vocabulary to cover the active catalog.

        The champion's ``item_id`` embedding grows zero rows in place
        (existing ids score bit-identically), the grown blob is
        re-published through ``adopt`` (registry surgery, not a
        behavioural change), and every replica swaps to it so the new
        catalog is servable immediately.
        """
        old_vocab = t.vocab
        # Load the champion while the factory still builds the *old*
        # schema: a cold registry load must materialise the blob at its
        # stored (pre-growth) shape before the table grows in place.
        champion = t.manager.champion_model()
        t.vocab = t.active_items
        t.schema = _schema_with_item_vocab(t.world.schema, t.vocab)
        champion.embedding.tables["item_id"].grow(t.vocab - old_vocab)
        decision = t.manager.adopt(
            champion,
            reference=t.manager.champion_reference(),
            note=f"day {day}: item vocab {old_vocab}->{t.vocab}",
            reason=f"catalog churn: item vocab {old_vocab}->{t.vocab}",
        )
        self._record_version(t, decision.version)
        t.bump("adopts")
        self._roll_fleet(t)
        self._emit(
            day, t.name, "vocab_grown",
            f"item_vocab {old_vocab}->{t.vocab} "
            f"version={decision.version[:12]}",
        )

    # -- retrain paths --------------------------------------------------
    def _managed_retrain(self, t: _Tenant, day: int, reason: str) -> None:
        cfg = self.config
        t.last_retrain_day = day
        t.bump("retrains")
        model, view, reference = self._train_candidate(t, day, "importance")
        decision = t.manager.submit(
            model,
            t.eval_set,
            train_config=t.train_config,
            reference=reference,
            note=f"day {day} retrain ({reason}); rows={len(view)}",
        )
        self._record_version(t, decision.version)
        self._emit(
            day, t.name, "retrain",
            f"reason={reason} rows={len(view)} -> {decision.action}",
        )
        if decision.action == "reject":
            t.bump("rejections")
            self._emit(
                day, t.name, "gate_reject",
                f"version={decision.version[:12]} {decision.reason}",
            )
            return
        assert decision.action == "stage"
        rollout = t.manager.build_canary(
            t.world,
            fleet=t.fleet,
            page_size=cfg.page_size,
            clock=t.clock,
        )
        rng = self._rng(t, day, 2)
        arrays, shed = self._serve_block(
            t, day, cfg.canary_pages, rng, rollout.serve_page,
            apply_faults=False,
        )
        if arrays is not None:
            canary_log = self._log_dataset(
                t, day, arrays, self._rng(t, day, 3), "canary"
            )
            admitted, _ = self._quarantine(t, day, canary_log)
            t.log.append((day, admitted))
        t.bump("shed", shed)
        verdict = t.manager.conclude_canary(rollout)
        self._emit(
            day, t.name, f"canary_{verdict.action}",
            f"version={verdict.version[:12]} {verdict.reason}",
        )
        if verdict.action == "promote":
            t.bump("promotions")
            t.prev_champion = t.fleet.version
            t.promoted_day = day
            self._roll_fleet(t)
            self._reset_monitors(t, keep_baseline=True)
        else:
            t.bump("demotions")

    def _always_promote_retrain(self, t: _Tenant, day: int) -> None:
        t.last_retrain_day = day
        t.bump("retrains")
        # The strawman's defining sins: no maturation correction
        # (censored conversions train as real negatives) and no
        # gate/canary -- every candidate takes all traffic immediately.
        model, view, reference = self._train_candidate(t, day, "none")
        decision = t.manager.adopt(
            model,
            reference=reference,
            note=f"day {day} blind retrain; rows={len(view)}",
            reason="always_promote cadence",
        )
        self._record_version(t, decision.version)
        t.bump("promotions")
        self._roll_fleet(t)
        self._reset_monitors(t)
        self._emit(
            day, t.name, "retrain",
            f"reason=cadence rows={len(view)} -> adopt",
        )

    def _maybe_rollback(self, t: _Tenant, day: int) -> None:
        """Roll a fresh promotion back when it made live traffic worse."""
        cfg = self.config
        if t.promoted_day is None or t.prev_champion is None:
            return
        age = day - t.promoted_day
        if age > cfg.rollback_grace_days:
            # The successor survived its grace window judged against
            # the previous champion's baseline; from here on its own
            # steady-state gap is the reference.
            t.calibration.rebase()
            t.promoted_day = None
            t.prev_champion = None
            return
        if age < 1:
            return
        if t.calibration.n_observed < t.calibration.thresholds.min_samples:
            return
        baseline = t.calibration.baseline or 0.0
        gap = t.calibration.gap()
        if abs(gap) <= abs(baseline):
            # The successor is *better* calibrated than the champion it
            # replaced.  A large drift() here just means the retrain
            # shrank the inherited selection gap -- the desired
            # outcome, never grounds for reverting the promotion.
            return
        if abs(t.calibration.drift()) < cfg.rollback_gap_trip:
            return
        if t.version_vocab.get(t.prev_champion) != t.vocab:
            # The previous champion predates a vocabulary growth; its
            # blob no longer matches the serving schema.
            return
        decision = t.manager.rollback(
            t.prev_champion,
            reason=(
                f"calibration drift {t.calibration.drift():+.3f} "
                f"{age}d after promotion"
            ),
        )
        t.bump("rollbacks")
        self._roll_fleet(t)
        self._reset_monitors(t, keep_baseline=True)
        t.promoted_day = None
        t.prev_champion = None
        self._emit(
            day, t.name, "rollback",
            f"restored={decision.version[:12]} {decision.reason}",
        )

    # -- the day loop ---------------------------------------------------
    def _bootstrap(self) -> None:
        cfg = self.config
        for t in self.tenants:
            rng = self._rng(t, -1, 0)
            bootstrap = self._organic_log(
                t, cfg.bootstrap_rows, rng, 0.0, self.t0_hours, day=-1
            )
            t.log.append((-1, bootstrap))
            self._refresh_eval_set(t, day=-1)
            view = lifecycle_retrain_view(
                t.world, bootstrap, self.t0_hours,
                correction="importance", weight_cap=cfg.weight_cap,
            )
            model = t.factory()
            fit_model(model, view, t.train_config)
            reference = self._capture_reference(t, model, day=-1)
            decision = t.manager.submit(
                model,
                t.eval_set,
                train_config=t.train_config,
                reference=reference,
                note=f"bootstrap on {len(view)} organic rows",
            )
            if decision.action != "bootstrap":
                raise RuntimeError(
                    f"{t.name}: bootstrap submit produced "
                    f"{decision.action!r}: {decision.reason}"
                )
            self._record_version(t, decision.version)
            t.fleet = ServingFleet.from_registry(
                t.registry,
                t.factory,
                t.world,
                cfg.n_replicas,
                policy=FleetPolicy(),
                seed=int(
                    np.random.SeedSequence(
                        [cfg.seed, t.index, 7]
                    ).generate_state(1)[0]
                ),
                clock=t.clock,
                page_size=cfg.page_size,
            )
            if cfg.fault_spec is not None:
                schedule = build_fleet_fault_schedule(
                    cfg.fault_spec,
                    cfg.n_replicas,
                    cfg.days * cfg.pages_per_day,
                    seed=cfg.seed + t.index,
                )
                t.drill = FleetChaosDrill(t.fleet, schedule)
            self._reset_monitors(t)
            self._emit(
                -1, t.name, "bootstrap",
                f"version={decision.version[:12]} rows={len(view)}",
            )

    def _apply_drift(self, t: _Tenant, day: int) -> bool:
        """Fold today's drift events into the tenant's world."""
        due = [e for e in t.events if e.day == day]
        if not due:
            return False
        changed = False
        for event in due:
            self._emit(day, t.name, "drift", event.describe())
            if event.kind == CATALOG_CHURN:
                t.active_items += event.new_items
                changed = True
        if any(e.overrides for e in due):
            t.world = SyntheticScenario(
                config_for_day(t.world_base, t.events, day)
            )
            t.behavior = BehaviorSimulator(t.world)
            changed = True
        return changed

    def _observe(
        self,
        t: _Tenant,
        day: int,
        day_log: InteractionDataset,
        explore_log: Optional[InteractionDataset],
    ):
        """Feed the day's admitted logs to calibration + sentinel.

        Calibration pairs predictions with realised clicks over *all*
        admitted traffic (served + exploration; its auto-baseline
        absorbs the selection offset).  The sentinel only sees the
        policy-free exploration slice: its reference was captured on
        that distribution, so feature/prediction drift it reports is
        world movement, not the serving policy's selection warp.

        Returns ``(calibration_status, sentinel_status, gap, drift)``
        captured *now* -- the day summary reuses these even if a
        promotion later in the day resets the monitors.
        """
        champion = t.manager.champion_model()
        preds = champion.predict(day_log.full_batch())
        t.calibration.observe(preds.ctr, day_log.clicks)
        if (
            t.sentinel is not None
            and explore_log is not None
            and len(explore_log) > 0
        ):
            probe_preds = champion.predict(explore_log.full_batch())
            t.sentinel.observe(
                dense=explore_log.dense,
                o_hat=probe_preds.ctr,
                cvr=probe_preds.cvr,
            )
        calib = t.calibration.status()  # may auto-freeze the baseline
        return (
            calib,
            "none" if t.sentinel is None else t.sentinel.status(),
            t.calibration.gap(),
            t.calibration.drift(),
        )

    def _retrain_reason(
        self, t: _Tenant, day: int, calib: str, sent: str, grew: bool
    ) -> Optional[str]:
        cfg = self.config
        if grew:
            return "catalog_growth"
        if day - t.last_retrain_day < cfg.retrain_cooldown_days:
            return None
        if calib == STATUS_TRIP:
            return "calibration_trip"
        if sent == STATUS_TRIP:
            return "sentinel_trip"
        if day > 0 and day % cfg.retrain_every_days == 0:
            return "scheduled"
        return None

    def _day_regret(self, t: _Tenant, day: int) -> Dict[str, float]:
        """Oracle CVR-AUC regret of the end-of-day serving champion."""
        champion = t.manager.champion_model()
        preds = champion.predict(t.eval_set.full_batch())
        labels = t.eval_set.oracle_conversion
        oracle_auc = auc(labels, t.eval_oracle)
        model_auc = auc(labels, preds.cvr)
        return {
            "oracle_auc": float(oracle_auc),
            "model_auc": float(model_auc),
            "regret": float(max(0.0, oracle_auc - model_auc)),
        }

    def run(self) -> MonthReport:
        """Execute the month and return its report."""
        cfg = self.config
        self._build_tenants()
        self._bootstrap()
        for day in range(cfg.days):
            for t in self.tenants:
                world_changed = self._apply_drift(t, day)
                arrays, shed = self._serve_block(
                    t, day, cfg.pages_per_day, self._rng(t, day, 0),
                    t.fleet.serve_page, apply_faults=True,
                )
                t.bump("shed", shed)
                calib = sent = "none"
                gap = drift_gap = 0.0
                served_log = explore_log = None
                held_parts: List[InteractionDataset] = []
                if arrays is not None:
                    served_log, held = self._quarantine(
                        t, day,
                        self._log_dataset(
                            t, day, arrays, self._rng(t, day, 1), "day"
                        ),
                    )
                    if held is not None:
                        held_parts.append(held)
                if cfg.exploration_rows_per_day > 0:
                    t_lo = self.t0_hours + day * 24.0
                    explore_log, held = self._quarantine(
                        t, day,
                        self._organic_log(
                            t, cfg.exploration_rows_per_day,
                            self._rng(t, day, 5), t_lo, t_lo + 24.0, day,
                        ),
                    )
                    if held is not None:
                        held_parts.append(held)
                day_parts = [
                    p for p in (served_log, explore_log)
                    if p is not None and len(p) > 0
                ]
                grew = t.vocab < t.active_items
                if grew:
                    self._grow_vocab(t, day)
                    if held_parts:
                        day_parts.extend(held_parts)
                        self._emit(
                            day, t.name, "readmitted",
                            f"rows={sum(len(h) for h in held_parts)} "
                            "after vocab growth",
                        )
                day_log = (
                    _concat_datasets(day_parts) if day_parts else None
                )
                if day_log is not None:
                    t.log.append((day, day_log))
                    calib, sent, gap, drift_gap = self._observe(
                        t, day, day_log, explore_log
                    )
                if cfg.mode == MANAGED:
                    self._maybe_rollback(t, day)
                    reason = self._retrain_reason(t, day, calib, sent, grew)
                    if reason is not None:
                        self._managed_retrain(t, day, reason)
                elif cfg.mode == ALWAYS_PROMOTE:
                    if day > 0 and day % cfg.always_retrain_every_days == 0:
                        self._always_promote_retrain(t, day)
                if world_changed or grew:
                    self._refresh_eval_set(t, day)
                regret = self._day_regret(t, day)
                served = 0 if arrays is None else int(
                    len(arrays[0]) // max(1, cfg.page_size)
                )
                row = {
                    "day": day,
                    "tenant": t.name,
                    "served_pages": served,
                    "shed": shed,
                    "calibration": calib,
                    "calibration_gap": round(gap, 6),
                    "calibration_drift": round(drift_gap, 6),
                    "sentinel": sent,
                    "champion": t.manager.champion.version[:12],
                    **regret,
                }
                self.daily.append(row)
                self._emit(
                    day, t.name, "day_summary",
                    f"served={served} shed={shed} calib={calib} "
                    f"drift={row['calibration_drift']:+.4f} sentinel={sent} "
                    f"regret={row['regret']:.4f} "
                    f"champion={row['champion']}",
                )
        for t in self.tenants:
            if t.drill is not None:
                t.drill._restore()
        report = MonthReport(
            mode=cfg.mode,
            seed=cfg.seed,
            days=cfg.days,
            tenants=cfg.tenants,
            events=list(self.events),
            daily=list(self.daily),
            tenant_summary={
                t.name: {
                    "regret": float(
                        sum(
                            r["regret"]
                            for r in self.daily
                            if r["tenant"] == t.name
                        )
                    ),
                    "served": int(t.fleet.stats.served),
                    "fleet_shed": int(t.fleet.stats.fleet_shed),
                    "fallback_pages": int(t.fleet.stats.fleet_fallback_pages),
                    **{k: int(v) for k, v in sorted(t.counters.items())},
                }
                for t in self.tenants
            },
            fleet={t.name: t.fleet.snapshot() for t in self.tenants},
            health_spans={
                t.name: t.fleet.stats.health_spans() for t in self.tenants
            },
        )
        log_event(
            logger,
            "month_complete",
            mode=cfg.mode,
            days=cfg.days,
            tenants=len(cfg.tenants),
            regret=report.total_regret,
        )
        return report


def run_month(
    config: Optional[MonthConfig] = None,
    workdir: "Path | str | None" = None,
) -> MonthReport:
    """One production month under ``config`` (default: managed mode)."""
    return MonthSimulation(config or MonthConfig(), workdir=workdir).run()


def compare_month_policies(
    config: Optional[MonthConfig] = None,
    workdir: "Path | str | None" = None,
) -> MonthComparison:
    """The oracle-regret comparison: managed vs both strawmen.

    All three runs replay the *same* seeded month (identical drift
    schedules, traffic streams, and behaviour draws); only the
    lifecycle policy differs.  The managed system should accumulate
    less oracle CVR-AUC regret than ``never_retrain`` (which decays
    with drift) and ``always_promote`` (which ships maturation-naive
    models trained on censored labels).
    """
    config = config or MonthConfig()
    base = Path(workdir) if workdir is not None else None
    reports: Dict[str, MonthReport] = {}
    for mode in MODES:
        sub = None if base is None else base / mode
        reports[mode] = MonthSimulation(
            replace(config, mode=mode), workdir=sub
        ).run()
    return MonthComparison(reports)
