"""Online A/B test simulation (Table V and Fig. 7).

The paper's online experiment serves ranked results from four models
(MMOE base, ESCM2-IPW, ESCM2-DR, DCMT) to disjoint user buckets on the
Alipay Search platform for a week and compares PV-CTR, PV-CVR and
Top-5 PV-CVR per day.  This package reproduces that protocol against
the synthetic behaviour world:

* :class:`~repro.simulation.serving.RankingService` -- scores candidate
  items with a trained model and serves the top-k, behind a circuit
  breaker with a CTR-model / popularity fallback chain so a page is
  always served;
* :class:`~repro.simulation.behavior.BehaviorSimulator` -- rolls out
  clicks and conversions from the scenario's true behaviour model
  (including the hidden attention confounder);
* :class:`~repro.simulation.ab_test.ABTest` -- bucket assignment, daily
  rollout, per-day and overall lifts with significance tests, and the
  day-1 prediction log used by the Fig. 7 reproduction;
* :class:`~repro.simulation.fleet.ServingFleet` -- N ranking replicas
  behind a health-aware power-of-two-choices router with hedged
  retries, fleet-level graceful degradation, and
  :class:`~repro.simulation.fleet.FleetChaosDrill` for seeded
  replica-loss drills.
"""

from repro.simulation.serving import (
    AdmissionQueue,
    Deadline,
    RankingService,
    ServingStats,
)
from repro.simulation.fleet import (
    FLEET_POPULARITY,
    FleetChaosDrill,
    FleetDrillReport,
    FleetEvent,
    FleetStats,
    Replica,
    ServingFleet,
)
from repro.simulation.behavior import BehaviorSimulator, PageViewOutcome
from repro.simulation.ab_test import (
    ABTest,
    ABTestConfig,
    ABTestResult,
    BucketDay,
)
# The feedback-loop experiments are re-exported lazily:
# repro.lifecycle.canary imports repro.simulation.serving (pulling in
# this package) while repro.simulation.feedback imports
# repro.lifecycle.manager -- an eager import here would close that
# cycle against a half-initialised repro.lifecycle.
_FEEDBACK_EXPORTS = (
    "DelayedFeedbackConfig",
    "DelayedFeedbackExperiment",
    "FeedbackConfig",
    "FeedbackLoopExperiment",
    "RoundMetrics",
    "delayed_feedback_weights",
    "lifecycle_retrain_view",
)

# The production-month simulator sits above the lifecycle package too,
# so it rides the same lazy-export path.
_MONTH_EXPORTS = (
    "ALL_TENANTS",
    "ALWAYS_PROMOTE",
    "MANAGED",
    "MODES",
    "NEVER_RETRAIN",
    "MonthComparison",
    "MonthConfig",
    "MonthEvent",
    "MonthReport",
    "MonthSimulation",
    "compare_month_policies",
    "run_month",
)


def __getattr__(name):
    if name in _FEEDBACK_EXPORTS:
        from repro.simulation import feedback

        return getattr(feedback, name)
    if name in _MONTH_EXPORTS:
        from repro.simulation import month

        return getattr(month, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "AdmissionQueue",
    "Deadline",
    "RankingService",
    "ServingStats",
    "FLEET_POPULARITY",
    "FleetChaosDrill",
    "FleetDrillReport",
    "FleetEvent",
    "FleetStats",
    "Replica",
    "ServingFleet",
    "BehaviorSimulator",
    "PageViewOutcome",
    "ABTest",
    "ABTestConfig",
    "ABTestResult",
    "BucketDay",
    "DelayedFeedbackConfig",
    "DelayedFeedbackExperiment",
    "FeedbackConfig",
    "FeedbackLoopExperiment",
    "RoundMetrics",
    "delayed_feedback_weights",
    "lifecycle_retrain_view",
    "ALL_TENANTS",
    "ALWAYS_PROMOTE",
    "MANAGED",
    "MODES",
    "NEVER_RETRAIN",
    "MonthComparison",
    "MonthConfig",
    "MonthEvent",
    "MonthReport",
    "MonthSimulation",
    "compare_month_policies",
    "run_month",
]
