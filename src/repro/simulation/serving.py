"""Model serving: score candidates and produce a ranked page.

Ranking uses the model's CTCVR prediction (``o_hat * r_hat``), the
business objective of the paper's search scenario (maximise double
clicks per page view).  Because features depend on the display
position, candidates are scored *as if* shown at the top position and
the resulting order determines the actual positions -- the standard
score-then-place serving loop.

Serving is degradation-tolerant: the primary scorer runs behind a
circuit breaker with bounded retries, and on failure the service walks
a fallback chain -- the shared CTR model, then a static popularity
prior -- so **a page is always served**.  Which path produced each page
is observable through :class:`ServingStats` and the breaker state
(``service.breaker.state``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.data.dataset import Batch
from repro.data.synthetic import SyntheticScenario
from repro.models.base import MultiTaskModel
from repro.reliability.circuit import CircuitBreaker
from repro.reliability.config import ServingPolicy
from repro.reliability.errors import ScoringUnavailableError
from repro.utils.logging import get_logger, log_event

logger = get_logger("simulation.serving")


@dataclass
class ServingStats:
    """Counters for the primary path and every fallback engagement."""

    requests: int = 0
    primary: int = 0
    retries: int = 0
    breaker_short_circuits: int = 0
    fallback_ctr_provider: int = 0
    fallback_popularity: int = 0
    #: Scoring source of the most recent request.
    last_source: str = ""
    #: Requests served per source (redundant with the counters above,
    #: but convenient for dashboards).
    by_source: Dict[str, int] = field(default_factory=dict)

    def record(self, source: str) -> None:
        self.last_source = source
        self.by_source[source] = self.by_source.get(source, 0) + 1

    @property
    def degraded_fraction(self) -> float:
        """Share of requests not served by the primary scorer."""
        if self.requests == 0:
            return 0.0
        return 1.0 - self.primary / self.requests


def _validate_scoring_model(model, role: str) -> None:
    """A usable scorer: a real model whose parameters are finite.

    "Fitted" cannot be observed directly (the substrate has no fitted
    flag), so we check the strongest available proxy: the object is a
    :class:`MultiTaskModel` with at least one parameter and no NaN/inf
    weights -- the state any diverged or half-loaded model fails.
    """
    if not isinstance(model, MultiTaskModel):
        raise TypeError(
            f"{role} must be a MultiTaskModel, got {type(model).__name__}"
        )
    params = model.parameters()
    if not params:
        raise ValueError(f"{role} has no parameters")
    for p in params:
        if not np.all(np.isfinite(p.data)):
            raise ValueError(
                f"{role} has non-finite parameters; refusing to serve a "
                "diverged model"
            )


class RankingService:
    """Serves top-k pages for one model against one scenario world."""

    def __init__(
        self,
        model: MultiTaskModel,
        scenario: SyntheticScenario,
        page_size: int = 10,
        objective: str = "ctcvr",
        ctr_provider: Optional[MultiTaskModel] = None,
        policy: Optional[ServingPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
    ) -> None:
        if page_size < 1:
            raise ValueError(f"page_size must be >= 1, got {page_size}")
        if objective not in ("ctcvr", "cvr", "ctr"):
            raise ValueError(f"unknown ranking objective {objective!r}")
        _validate_scoring_model(model, "model")
        if ctr_provider is not None:
            _validate_scoring_model(ctr_provider, "ctr_provider")
        self.model = model
        self.scenario = scenario
        self.page_size = page_size
        self.objective = objective
        #: Optional shared CTR model.  In the paper's A/B test the
        #: buckets deploy different *CVR* estimators while the rest of
        #: the production stack (including the CTR estimate entering
        #: the ranking formula) is shared; passing the base bucket's
        #: model here reproduces that isolation.  It doubles as the
        #: first fallback scorer when the primary path fails.
        self.ctr_provider = ctr_provider
        self.policy = policy or ServingPolicy()
        self.breaker = breaker or CircuitBreaker(
            failure_threshold=self.policy.breaker_failure_threshold,
            recovery_time=self.policy.breaker_recovery_time,
        )
        self.stats = ServingStats()
        #: CVR prior reported for fallback-served pages (the scenario's
        #: calibrated click-space conversion rate).
        self._cvr_prior = float(scenario.config.target_cvr_given_click)

    # ------------------------------------------------------------------
    def _features(
        self,
        user: int,
        candidates: np.ndarray,
        rng: np.random.Generator,
    ) -> Batch:
        n = len(candidates)
        users = np.full(n, user)
        positions = np.zeros(n, dtype=np.int64)  # scored as-if top slot
        sparse, dense = self.scenario.features_for(users, candidates, positions, rng)
        return Batch(
            sparse=sparse,
            dense=dense,
            clicks=np.zeros(n, dtype=np.int64),
            conversions=np.zeros(n, dtype=np.int64),
        )

    def score_candidates(
        self,
        user: int,
        candidates: np.ndarray,
        rng: np.random.Generator,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(scores, cvr_predictions)`` for the candidate items."""
        batch = self._features(user, candidates, rng)
        preds = self.model.predict(batch)
        ctr = preds.ctr
        if self.ctr_provider is not None and self.ctr_provider is not self.model:
            ctr = self.ctr_provider.predict(batch).ctr
        scores = {
            "ctcvr": ctr * preds.cvr,
            "cvr": preds.cvr,
            "ctr": ctr,
        }[self.objective]
        return scores, preds.cvr

    # -- the fallback chain --------------------------------------------
    def _score_with_fallback(
        self,
        user: int,
        candidates: np.ndarray,
        rng: np.random.Generator,
    ) -> Tuple[np.ndarray, np.ndarray, str]:
        """Primary scorer -> shared CTR model -> popularity prior.

        Every failure of the primary path feeds the circuit breaker;
        while the breaker is open the primary is skipped outright, so a
        dead model costs one state check instead of a retry storm.
        """
        policy = self.policy
        if self.breaker.allow():
            for attempt in range(1 + policy.max_retries):
                try:
                    scores, cvr = self.score_candidates(user, candidates, rng)
                except Exception as exc:
                    self.breaker.record_failure()
                    wrapped = (
                        exc
                        if isinstance(exc, ScoringUnavailableError)
                        else ScoringUnavailableError(f"primary scorer failed: {exc}")
                    )
                    log_event(
                        logger,
                        "scoring_failure",
                        level=30,  # WARNING
                        attempt=attempt,
                        breaker=self.breaker.state,
                        error=str(wrapped),
                    )
                    if attempt < policy.max_retries and self.breaker.allow():
                        self.stats.retries += 1
                        if policy.backoff_s:
                            time.sleep(
                                policy.backoff_s
                                * policy.backoff_multiplier**attempt
                            )
                        continue
                    break
                else:
                    self.breaker.record_success()
                    self.stats.primary += 1
                    return scores, cvr, "primary"
        else:
            self.stats.breaker_short_circuits += 1

        if self.ctr_provider is not None and self.ctr_provider is not self.model:
            try:
                batch = self._features(user, candidates, rng)
                ctr = self.ctr_provider.predict(batch).ctr
                self.stats.fallback_ctr_provider += 1
                cvr = np.full(len(candidates), self._cvr_prior)
                return ctr, cvr, "ctr_provider"
            except Exception as exc:
                log_event(
                    logger, "fallback_ctr_failure", level=30, error=str(exc)
                )

        # Last resort: the scenario's Zipf popularity prior.  Static,
        # model-free, and cannot fail -- the page is always served.
        scores = self.scenario.item_popularity[candidates]
        cvr = np.full(len(candidates), self._cvr_prior)
        self.stats.fallback_popularity += 1
        return scores, cvr, "popularity"

    # ------------------------------------------------------------------
    def serve_page(
        self,
        user: int,
        candidates: np.ndarray,
        rng: np.random.Generator,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Rank candidates; return ``(page_items, cvr_predictions)``.

        ``page_items`` are the top ``page_size`` item ids in display
        order; ``cvr_predictions`` are the model's CVR estimates for
        those items (logged for the Fig. 7 analysis).  When the primary
        scorer is unavailable the fallback chain ranks the page instead
        (see :class:`ServingStats` for which path served what).
        """
        if len(candidates) == 0:
            raise ValueError("cannot serve an empty candidate list")
        self.stats.requests += 1
        scores, cvr, source = self._score_with_fallback(user, candidates, rng)
        self.stats.record(source)
        order = np.argsort(-scores)[: self.page_size]
        return candidates[order], cvr[order]
