"""Model serving: score candidates and produce a ranked page.

Ranking uses the model's CTCVR prediction (``o_hat * r_hat``), the
business objective of the paper's search scenario (maximise double
clicks per page view).  Because features depend on the display
position, candidates are scored *as if* shown at the top position and
the resulting order determines the actual positions -- the standard
score-then-place serving loop.

Serving is degradation-tolerant end to end:

* the primary scorer runs behind a circuit breaker with bounded,
  deadline-aware retries, and on failure the service walks a fallback
  chain -- the shared CTR model, then a static popularity prior -- so
  an *admitted* request always gets a page;
* a prediction sanitizer rejects NaN/out-of-[0,1] scores before they
  reach ranking, feeding the breaker exactly like a thrown exception;
* a bounded admission queue sheds arrivals when full, and a health
  state machine (HEALTHY -> DEGRADED -> SHEDDING, see
  :mod:`repro.reliability.health`) driven by the breaker, the drift
  sentinels, and the queue depth sheds a deterministic fraction of
  traffic while the service is overwhelmed;
* an optional :class:`~repro.reliability.drift.DriftSentinel` observes
  every primary-path prediction, so distribution shift is a first-class
  degradation signal.

Which path produced each page is observable through
:class:`ServingStats`, ``service.breaker.state``, ``service.health``
and ``service.admission``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.data.dataset import Batch
from repro.data.synthetic import SyntheticScenario
from repro.models.base import MultiTaskModel
from repro.reliability.circuit import CircuitBreaker
from repro.reliability.config import AdmissionPolicy, ServingPolicy
from repro.reliability.drift import DriftSentinel
from repro.reliability.errors import RequestShedError, ScoringUnavailableError
from repro.reliability.health import SHEDDING, HealthMonitor, HealthPolicy
from repro.reliability.timeouts import (
    Deadline,
    cap_to_deadline,
    exponential_backoff,
)
from repro.utils.logging import get_logger, log_event

logger = get_logger("simulation.serving")

# ``Deadline`` is re-exported here for the many call sites (fleet,
# tests, examples) that historically imported it from this module; it
# now lives with the rest of the retry/backoff machinery in
# :mod:`repro.reliability.timeouts`.


class AdmissionQueue:
    """Bounded request queue standing in for the server's run queue.

    Each in-flight request holds one slot (``try_admit``/``release``);
    a full queue sheds arrivals.  Simulations of backlog can pin slots
    with :meth:`occupy` (a load generator holding requests open) and
    free them with :meth:`drain`.  Pinned slots may carry a
    :class:`Deadline`; entries whose deadline has expired are purged
    *before* every admission decision, so stale requests that nobody
    will wait for stop consuming capacity and shedding fresh traffic.
    """

    def __init__(self, policy: Optional[AdmissionPolicy] = None) -> None:
        self.policy = policy or AdmissionPolicy()
        #: Slots held by requests currently being served.
        self._inflight = 0
        #: Pinned backlog slots, each optionally carrying its deadline.
        self._backlog: List[Optional[Deadline]] = []
        self.offered = 0
        self.admitted = 0
        self.rejected = 0
        #: Backlog entries dropped because their deadline expired.
        self.expired_purged = 0

    @property
    def depth(self) -> int:
        """Occupied slots: in-flight requests plus pinned backlog."""
        return self._inflight + len(self._backlog)

    @property
    def fraction(self) -> float:
        """Current fullness in [0, 1]."""
        return self.depth / self.policy.max_queue_depth

    def purge_expired(self) -> int:
        """Drop backlog entries whose deadline has expired.

        Returns how many were purged.  Runs automatically at the top of
        :meth:`try_admit`, so admission decisions never count a request
        that has already timed out against capacity.
        """
        live = [d for d in self._backlog if d is None or not d.expired()]
        purged = len(self._backlog) - len(live)
        if purged:
            self._backlog = live
            self.expired_purged += purged
        return purged

    def try_admit(self) -> bool:
        self.purge_expired()
        self.offered += 1
        if self.depth >= self.policy.max_queue_depth:
            self.rejected += 1
            return False
        self._inflight += 1
        self.admitted += 1
        return True

    def release(self) -> None:
        self._inflight = max(self._inflight - 1, 0)

    def occupy(self, n: int, deadline: Optional[Deadline] = None) -> None:
        """Pin ``n`` slots (simulated backlog; capped at capacity).

        ``deadline`` attaches a latency budget to the pinned entries;
        once it expires the next admission decision purges them.
        """
        room = max(self.policy.max_queue_depth - self.depth, 0)
        self._backlog.extend([deadline] * min(n, room))

    def drain(self, n: Optional[int] = None) -> None:
        """Free ``n`` pinned slots (all of them when ``None``)."""
        if n is None:
            self._backlog.clear()
        else:
            del self._backlog[: max(n, 0)]


@dataclass
class ServingStats:
    """Counters for the primary path and every degradation event."""

    requests: int = 0
    primary: int = 0
    retries: int = 0
    breaker_short_circuits: int = 0
    fallback_ctr_provider: int = 0
    fallback_popularity: int = 0
    #: Requests refused by admission control (queue full or SHEDDING).
    shed: int = 0
    #: Requests whose primary retries were abandoned on the deadline.
    deadline_fallbacks: int = 0
    #: Scorer outputs rejected for NaN/out-of-range values.
    sanitizer_rejections: int = 0
    #: Scoring source of the most recent request.
    last_source: str = ""
    #: Requests served per source (redundant with the counters above,
    #: but convenient for dashboards).
    by_source: Dict[str, int] = field(default_factory=dict)
    #: Per-served-request latency samples (seconds, injected clock).
    latencies_s: List[float] = field(default_factory=list)

    def record(self, source: str) -> None:
        self.last_source = source
        self.by_source[source] = self.by_source.get(source, 0) + 1

    def record_latency(self, seconds: float) -> None:
        self.latencies_s.append(float(seconds))

    def latency_percentile(self, q: float) -> float:
        """The ``q``-th latency percentile (0.0 with no samples)."""
        if not self.latencies_s:
            return 0.0
        return float(np.percentile(self.latencies_s, q))

    def latency_summary(self) -> Dict[str, float]:
        """p50/p95/p99 over every served request, from the service clock."""
        return {
            "n": float(len(self.latencies_s)),
            "p50": self.latency_percentile(50.0),
            "p95": self.latency_percentile(95.0),
            "p99": self.latency_percentile(99.0),
        }

    @property
    def degraded_fraction(self) -> float:
        """Share of requests not served by the primary scorer."""
        if self.requests == 0:
            return 0.0
        return 1.0 - self.primary / self.requests


def _validate_scoring_model(model, role: str) -> None:
    """A usable scorer: a real model whose parameters are finite.

    "Fitted" cannot be observed directly (the substrate has no fitted
    flag), so we check the strongest available proxy: the object is a
    :class:`MultiTaskModel` with at least one parameter and no NaN/inf
    weights -- the state any diverged or half-loaded model fails.
    """
    if not isinstance(model, MultiTaskModel):
        raise TypeError(
            f"{role} must be a MultiTaskModel, got {type(model).__name__}"
        )
    params = model.parameters()
    if not params:
        raise ValueError(f"{role} has no parameters")
    for p in params:
        if not np.all(np.isfinite(p.data)):
            raise ValueError(
                f"{role} has non-finite parameters; refusing to serve a "
                "diverged model"
            )


def _check_probabilities(values: np.ndarray, what: str) -> None:
    """Sanitizer core: finite and inside [0, 1], or the scorer failed."""
    values = np.asarray(values)
    if not np.all(np.isfinite(values)):
        raise ScoringUnavailableError(f"sanitizer: non-finite {what}")
    if np.any(values < 0.0) or np.any(values > 1.0):
        raise ScoringUnavailableError(f"sanitizer: {what} outside [0, 1]")


class RankingService:
    """Serves top-k pages for one model against one scenario world."""

    def __init__(
        self,
        model: MultiTaskModel,
        scenario: SyntheticScenario,
        page_size: int = 10,
        objective: str = "ctcvr",
        ctr_provider: Optional[MultiTaskModel] = None,
        policy: Optional[ServingPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        sentinel: Optional[DriftSentinel] = None,
        admission: Optional[AdmissionPolicy] = None,
        health: Optional[HealthPolicy] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if page_size < 1:
            raise ValueError(f"page_size must be >= 1, got {page_size}")
        if objective not in ("ctcvr", "cvr", "ctr"):
            raise ValueError(f"unknown ranking objective {objective!r}")
        _validate_scoring_model(model, "model")
        if ctr_provider is not None:
            _validate_scoring_model(ctr_provider, "ctr_provider")
        self.model = model
        self.scenario = scenario
        self.page_size = page_size
        self.objective = objective
        #: Optional shared CTR model.  In the paper's A/B test the
        #: buckets deploy different *CVR* estimators while the rest of
        #: the production stack (including the CTR estimate entering
        #: the ranking formula) is shared; passing the base bucket's
        #: model here reproduces that isolation.  It doubles as the
        #: first fallback scorer when the primary path fails.
        self.ctr_provider = ctr_provider
        self.policy = policy or ServingPolicy()
        self._clock = clock or time.monotonic
        self.breaker = breaker or CircuitBreaker(
            failure_threshold=self.policy.breaker_failure_threshold,
            recovery_time=self.policy.breaker_recovery_time,
            clock=self._clock,
        )
        self.sentinel = sentinel
        self.admission = AdmissionQueue(admission)
        self.health = HealthMonitor(health or HealthPolicy())
        self.stats = ServingStats()
        #: CVR prior reported for fallback-served pages (the scenario's
        #: calibrated click-space conversion rate).
        self._cvr_prior = float(scenario.config.target_cvr_given_click)
        #: Propensity (CTR) predictions of the most recent primary
        #: scoring call, for the drift sentinel.
        self._last_ctr: Optional[np.ndarray] = None
        #: Deterministic shed pattern position (SHEDDING state).
        self._shed_phase = 0

    # ------------------------------------------------------------------
    def swap_model(self, model: MultiTaskModel) -> None:
        """Replace the primary scorer in place (promotion / rollback).

        The incoming model is validated exactly like the constructor's
        (a diverged or half-loaded model is refused before it can take
        traffic), the breaker is reset so the new model starts with a
        clean failure budget, and the drift sentinel's serving window is
        cleared so the old model's prediction distribution cannot trip
        (or mask) drift on the new one.  Stats and health transitions
        are retained -- a swap is an event inside one serving timeline,
        not a new service.
        """
        _validate_scoring_model(model, "model")
        self.model = model
        self.breaker.reset()
        if self.sentinel is not None:
            self.sentinel.reset()
        self._last_ctr = None
        log_event(logger, "model_swapped", breaker=self.breaker.state)

    def health_snapshot(self) -> Dict[str, object]:
        """One structured view of every degradation signal.

        The canary controller renders this per arm; operators get the
        health state, breaker counters, queue depth, shed count, and
        drift status without cross-referencing four objects.
        """
        return {
            "health": self.health.snapshot(),
            "breaker": self.breaker.snapshot(),
            "queue_depth": self.admission.depth,
            "queue_capacity": self.admission.policy.max_queue_depth,
            "shed": self.stats.shed,
            "requests": self.stats.requests,
            "degraded_fraction": self.stats.degraded_fraction,
            "sanitizer_rejections": self.stats.sanitizer_rejections,
            "latency": self.stats.latency_summary(),
            "drift": (
                "ok" if self.sentinel is None else self.sentinel.status()
            ),
        }

    # ------------------------------------------------------------------
    def _features(
        self,
        user: int,
        candidates: np.ndarray,
        rng: np.random.Generator,
    ) -> Batch:
        n = len(candidates)
        users = np.full(n, user)
        positions = np.zeros(n, dtype=np.int64)  # scored as-if top slot
        sparse, dense = self.scenario.features_for(users, candidates, positions, rng)
        return Batch(
            sparse=sparse,
            dense=dense,
            clicks=np.zeros(n, dtype=np.int64),
            conversions=np.zeros(n, dtype=np.int64),
        )

    def score_candidates(
        self,
        user: int,
        candidates: np.ndarray,
        rng: np.random.Generator,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(scores, cvr_predictions)`` for the candidate items."""
        batch = self._features(user, candidates, rng)
        preds = self.model.predict(batch)
        ctr = preds.ctr
        if self.ctr_provider is not None and self.ctr_provider is not self.model:
            ctr = self.ctr_provider.predict(batch).ctr
        self._last_ctr = ctr
        scores = {
            "ctcvr": ctr * preds.cvr,
            "cvr": preds.cvr,
            "ctr": ctr,
        }[self.objective]
        return scores, preds.cvr

    # -- the fallback chain --------------------------------------------
    def _score_with_fallback(
        self,
        user: int,
        candidates: np.ndarray,
        rng: np.random.Generator,
        deadline: Deadline,
    ) -> Tuple[np.ndarray, np.ndarray, str]:
        """Primary scorer -> shared CTR model -> popularity prior.

        Every failure of the primary path (thrown *or* sanitized away)
        feeds the circuit breaker; while the breaker is open the primary
        is skipped outright, so a dead model costs one state check
        instead of a retry storm.  An expired deadline abandons the
        remaining retries and rides the fallback chain immediately --
        the page still ships, just from a cheaper scorer.
        """
        policy = self.policy
        if deadline.expired():
            self.stats.deadline_fallbacks += 1
        elif self.breaker.allow():
            for attempt in range(1 + policy.max_retries):
                try:
                    scores, cvr = self.score_candidates(user, candidates, rng)
                    self._sanitize_primary(scores, cvr)
                except Exception as exc:
                    self.breaker.record_failure()
                    wrapped = (
                        exc
                        if isinstance(exc, ScoringUnavailableError)
                        else ScoringUnavailableError(f"primary scorer failed: {exc}")
                    )
                    log_event(
                        logger,
                        "scoring_failure",
                        level=30,  # WARNING
                        attempt=attempt,
                        breaker=self.breaker.state,
                        error=str(wrapped),
                    )
                    if attempt < policy.max_retries and deadline.expired():
                        self.stats.deadline_fallbacks += 1
                        break
                    if attempt < policy.max_retries and self.breaker.allow():
                        self.stats.retries += 1
                        if policy.backoff_s:
                            pause = exponential_backoff(
                                policy.backoff_s,
                                attempt,
                                policy.backoff_multiplier,
                            )
                            time.sleep(cap_to_deadline(pause, deadline))
                        continue
                    break
                else:
                    self.breaker.record_success()
                    self.stats.primary += 1
                    self._observe_drift(cvr)
                    return scores, cvr, "primary"
        else:
            self.stats.breaker_short_circuits += 1

        if self.ctr_provider is not None and self.ctr_provider is not self.model:
            try:
                batch = self._features(user, candidates, rng)
                ctr = self.ctr_provider.predict(batch).ctr
                _check_probabilities(ctr, "fallback CTR scores")
                self.stats.fallback_ctr_provider += 1
                cvr = np.full(len(candidates), self._cvr_prior)
                return ctr, cvr, "ctr_provider"
            except ScoringUnavailableError as exc:
                self.stats.sanitizer_rejections += 1
                log_event(
                    logger, "fallback_ctr_failure", level=30, error=str(exc)
                )
            except Exception as exc:
                log_event(
                    logger, "fallback_ctr_failure", level=30, error=str(exc)
                )

        # Last resort: the scenario's Zipf popularity prior.  Static,
        # model-free, and cannot fail -- the page is always served.
        scores = self.scenario.item_popularity[candidates]
        cvr = np.full(len(candidates), self._cvr_prior)
        self.stats.fallback_popularity += 1
        return scores, cvr, "popularity"

    def _sanitize_primary(self, scores: np.ndarray, cvr: np.ndarray) -> None:
        """Reject NaN/out-of-range predictions before they rank a page.

        A rejection is a primary-path failure: it raises
        :class:`ScoringUnavailableError` inside the retry loop, feeds
        the breaker, and engages the existing fallback chain.
        """
        try:
            _check_probabilities(scores, f"{self.objective} scores")
            _check_probabilities(cvr, "cvr predictions")
        except ScoringUnavailableError:
            self.stats.sanitizer_rejections += 1
            raise

    def _observe_drift(self, cvr: np.ndarray) -> None:
        if self.sentinel is None:
            return
        self.sentinel.observe(o_hat=self._last_ctr, cvr=cvr)

    def _update_health(self) -> str:
        drift = self.sentinel.status() if self.sentinel is not None else "ok"
        return self.health.update(
            breaker_open=self.breaker.state == CircuitBreaker.OPEN,
            drift_status=drift,
            queue_fraction=self.admission.fraction,
        )

    # ------------------------------------------------------------------
    def serve_page(
        self,
        user: int,
        candidates: np.ndarray,
        rng: np.random.Generator,
        deadline_s: Optional[float] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Rank candidates; return ``(page_items, cvr_predictions)``.

        ``page_items`` are the top ``page_size`` item ids in display
        order; ``cvr_predictions`` are the model's CVR estimates for
        those items (logged for the Fig. 7 analysis).  When the primary
        scorer is unavailable the fallback chain ranks the page instead
        (see :class:`ServingStats` for which path served what).

        ``deadline_s`` overrides ``policy.deadline_s`` for this request.
        Raises :class:`~repro.reliability.errors.RequestShedError` when
        admission control refuses the request (full queue, or SHEDDING
        health state); an admitted request always gets a page.
        """
        if len(candidates) == 0:
            raise ValueError("cannot serve an empty candidate list")
        self.stats.requests += 1

        state = self._update_health()
        if state == SHEDDING:
            self._shed_phase += 1
            if self._shed_phase % self.admission.policy.shed_stride != 0:
                self.stats.shed += 1
                raise RequestShedError(
                    f"shedding load (health={state}, "
                    f"queue {self.admission.depth}/"
                    f"{self.admission.policy.max_queue_depth})"
                )
        if not self.admission.try_admit():
            self.stats.shed += 1
            raise RequestShedError(
                f"admission queue full "
                f"({self.admission.depth}/{self.admission.policy.max_queue_depth})"
            )
        try:
            deadline = Deadline(
                self.policy.deadline_s if deadline_s is None else deadline_s,
                self._clock,
            )
            scores, cvr, source = self._score_with_fallback(
                user, candidates, rng, deadline
            )
        finally:
            self.admission.release()
        self.stats.record(source)
        self.stats.record_latency(deadline.elapsed())
        self._update_health()
        # Belt-and-braces: whatever path served, the CVR estimates the
        # caller logs are finite and inside [0, 1].
        cvr = np.clip(np.nan_to_num(cvr, nan=self._cvr_prior), 0.0, 1.0)
        order = np.argsort(-scores)[: self.page_size]
        return candidates[order], cvr[order]
