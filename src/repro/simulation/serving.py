"""Model serving: score candidates and produce a ranked page.

Ranking uses the model's CTCVR prediction (``o_hat * r_hat``), the
business objective of the paper's search scenario (maximise double
clicks per page view).  Because features depend on the display
position, candidates are scored *as if* shown at the top position and
the resulting order determines the actual positions -- the standard
score-then-place serving loop.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.data.dataset import Batch
from repro.data.synthetic import SyntheticScenario
from repro.models.base import MultiTaskModel


class RankingService:
    """Serves top-k pages for one model against one scenario world."""

    def __init__(
        self,
        model: MultiTaskModel,
        scenario: SyntheticScenario,
        page_size: int = 10,
        objective: str = "ctcvr",
        ctr_provider: "MultiTaskModel" = None,
    ) -> None:
        if page_size < 1:
            raise ValueError(f"page_size must be >= 1, got {page_size}")
        if objective not in ("ctcvr", "cvr", "ctr"):
            raise ValueError(f"unknown ranking objective {objective!r}")
        self.model = model
        self.scenario = scenario
        self.page_size = page_size
        self.objective = objective
        #: Optional shared CTR model.  In the paper's A/B test the
        #: buckets deploy different *CVR* estimators while the rest of
        #: the production stack (including the CTR estimate entering
        #: the ranking formula) is shared; passing the base bucket's
        #: model here reproduces that isolation.
        self.ctr_provider = ctr_provider

    def score_candidates(
        self,
        user: int,
        candidates: np.ndarray,
        rng: np.random.Generator,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(scores, cvr_predictions)`` for the candidate items."""
        n = len(candidates)
        users = np.full(n, user)
        positions = np.zeros(n, dtype=np.int64)  # scored as-if top slot
        sparse, dense = self.scenario.features_for(users, candidates, positions, rng)
        batch = Batch(
            sparse=sparse,
            dense=dense,
            clicks=np.zeros(n, dtype=np.int64),
            conversions=np.zeros(n, dtype=np.int64),
        )
        preds = self.model.predict(batch)
        ctr = preds.ctr
        if self.ctr_provider is not None and self.ctr_provider is not self.model:
            ctr = self.ctr_provider.predict(batch).ctr
        scores = {
            "ctcvr": ctr * preds.cvr,
            "cvr": preds.cvr,
            "ctr": ctr,
        }[self.objective]
        return scores, preds.cvr

    def serve_page(
        self,
        user: int,
        candidates: np.ndarray,
        rng: np.random.Generator,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Rank candidates; return ``(page_items, cvr_predictions)``.

        ``page_items`` are the top ``page_size`` item ids in display
        order; ``cvr_predictions`` are the model's CVR estimates for
        those items (logged for the Fig. 7 analysis).
        """
        if len(candidates) == 0:
            raise ValueError("cannot serve an empty candidate list")
        scores, cvr = self.score_candidates(user, candidates, rng)
        order = np.argsort(-scores)[: self.page_size]
        return candidates[order], cvr[order]
