"""A replicated serving fleet: N ranking replicas behind one router.

One :class:`~repro.simulation.serving.RankingService` process is a
single point of failure: one breaker trip or NaN burst takes down the
whole "site".  :class:`ServingFleet` runs N replicas -- each carrying
its own breaker / admission queue / health machine / drift stack --
behind a deterministic router, and survives replica loss, slow
replicas, and partial corruption without dropping the page:

* **Health-aware routing** -- power-of-two-choices on replica queue
  depth, drawn from the fleet's seeded RNG, skipping replicas that are
  dead, SHEDDING, or breaker-open.  A sick replica stops receiving
  traffic the moment its own machines say so.
* **Hedged retries** -- when the routed replica refuses the request or
  serves a model-free page, the fleet retries once against a
  *different* replica, with seeded-jitter backoff capped by the
  request deadline.  The same seed reproduces the same retry schedule
  bit for bit.
* **Graceful degradation** -- a fleet-level HEALTHY -> DEGRADED ->
  CRITICAL machine driven by replica quorum
  (:class:`~repro.reliability.health.FleetHealthMonitor`).  Lost
  quorum widens shedding at the fleet door before total failure;
  only when *every* replica is down does the fallback chain end in
  the scenario's model-free popularity scorer.
* **Serve-from-registry** -- :meth:`ServingFleet.from_registry` loads
  each replica's parameters from a published
  :class:`~repro.lifecycle.registry.ModelRegistry` version, so
  replicas serve independent frozen copies of the champion, never a
  live training object.
* **Chaos drills** -- :class:`FleetChaosDrill` replays a seeded
  :func:`~repro.reliability.faults.build_fleet_fault_schedule`
  (replica kills, injected-clock slowdowns, NaN-prediction bursts)
  against a live fleet and produces a deterministic transcript.

Every request lands in :attr:`ServingFleet.transcript` as a
:class:`FleetEvent`, so a whole episode is a comparable value.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.reliability.circuit import CircuitBreaker
from repro.reliability.config import FleetPolicy
from repro.reliability.errors import ReplicaUnavailableError, RequestShedError
from repro.reliability.faults import (
    REPLICA_KILL,
    REPLICA_NAN,
    REPLICA_SLOWDOWN,
    ReplicaFault,
)
from repro.reliability.health import (
    CRITICAL,
    DEGRADED,
    SHEDDING,
    FleetHealthMonitor,
    FleetHealthPolicy,
)
from repro.reliability.timeouts import cap_to_deadline, jittered_backoff
from repro.simulation.serving import Deadline, RankingService
from repro.utils.hashing import stable_fraction
from repro.utils.logging import get_logger, log_event

logger = get_logger("simulation.fleet")

#: Source label for pages ranked by the fleet's own popularity
#: fallback (every replica down) rather than any replica.
FLEET_POPULARITY = "fleet_popularity"

#: Preference order when a hedge and the primary both produced a page.
_SOURCE_RANK = {"primary": 3, "ctr_provider": 2, "popularity": 1, "": 0}


@dataclass
class Replica:
    """One fleet member: a ranking service plus its liveness flag."""

    name: str
    service: RankingService
    #: Chaos switch: a dead replica is skipped by the router outright
    #: (the process is gone; not even its breaker answers).
    alive: bool = True


@dataclass(frozen=True)
class FleetEvent:
    """One routed request, for the deterministic fleet transcript."""

    request: int
    user: int
    fleet_state: str
    #: Replica the router picked first ("" when shed before routing or
    #: served straight from the fleet fallback).
    primary: str
    hedged: bool
    #: Hedge replica name ("" when no hedge fired).
    hedge: str
    #: Jitter draw u ~ U[0, 1) consumed by the hedge backoff (0.0 when
    #: no hedge fired) -- makes the seeded retry schedule assertable.
    hedge_jitter: float
    #: Scoring source of the final page ("" for shed requests).
    source: str
    #: Replica that produced the final page ("" for fleet fallback).
    served_by: str
    outcome: str  # "served" | "shed"

    def line(self) -> str:
        """Stable one-line rendering for drill transcripts."""
        return (
            f"[{self.request:05d}] user={self.user} state={self.fleet_state} "
            f"primary={self.primary or '-'} "
            f"hedge={self.hedge or '-'} jitter={self.hedge_jitter:.6f} "
            f"source={self.source or '-'} by={self.served_by or '-'} "
            f"outcome={self.outcome}"
        )


@dataclass
class FleetStats:
    """Fleet-level counters on top of the per-replica ones."""

    requests: int = 0
    served: int = 0
    #: Requests refused at the fleet door (lost-quorum shedding).
    fleet_shed: int = 0
    #: Replica attempts that refused the request (shed or error).
    replica_refusals: int = 0
    hedges: int = 0
    #: Hedge attempts whose page beat (or replaced) the primary's.
    hedge_wins: int = 0
    #: Pages ranked by the fleet's own popularity fallback.
    fleet_fallback_pages: int = 0
    by_source: Dict[str, int] = field(default_factory=dict)
    by_replica: Dict[str, int] = field(default_factory=dict)
    #: Per-served-request latency samples (seconds, fleet clock).
    latencies_s: List[float] = field(default_factory=list)
    #: Change-points of the fleet's health picture: one entry per
    #: request index at which the fleet state *or* any replica's state
    #: differed from the previous entry, as ``{"request": i, "fleet":
    #: state, "replicas": {name: state}}``.  This is the single surface
    #: a dashboard (or the month report) reads to plot
    #: HEALTHY/DEGRADED/SHEDDING spans without scraping the event
    #: transcript; :meth:`health_spans` renders it as intervals.
    health_timeline: List[Dict[str, object]] = field(default_factory=list)

    def record_health(
        self, request: int, fleet_state: str, replica_states: Dict[str, str]
    ) -> None:
        """Append a timeline entry iff the health picture changed."""
        if self.health_timeline:
            last = self.health_timeline[-1]
            if (
                last["fleet"] == fleet_state
                and last["replicas"] == replica_states
            ):
                return
        self.health_timeline.append(
            {
                "request": request,
                "fleet": fleet_state,
                "replicas": dict(replica_states),
            }
        )

    def health_spans(
        self, end_request: Optional[int] = None
    ) -> List[Dict[str, object]]:
        """The timeline as half-open ``[start, end)`` request spans.

        ``end_request`` closes the final span (defaults to the request
        counter); each span carries the fleet state and the replica
        states that held throughout it.
        """
        if end_request is None:
            end_request = self.requests
        spans: List[Dict[str, object]] = []
        for i, entry in enumerate(self.health_timeline):
            end = (
                self.health_timeline[i + 1]["request"]
                if i + 1 < len(self.health_timeline)
                else end_request
            )
            spans.append(
                {
                    "start": entry["request"],
                    "end": end,
                    "fleet": entry["fleet"],
                    "replicas": dict(entry["replicas"]),
                }
            )
        return spans

    def record(self, source: str, served_by: str) -> None:
        self.served += 1
        self.by_source[source] = self.by_source.get(source, 0) + 1
        if served_by:
            self.by_replica[served_by] = self.by_replica.get(served_by, 0) + 1

    def record_latency(self, seconds: float) -> None:
        self.latencies_s.append(float(seconds))

    def latency_percentile(self, q: float) -> float:
        if not self.latencies_s:
            return 0.0
        return float(np.percentile(self.latencies_s, q))

    def latency_summary(self) -> Dict[str, float]:
        """Fleet-wide p50/p95/p99 from the injected clock."""
        return {
            "n": float(len(self.latencies_s)),
            "p50": self.latency_percentile(50.0),
            "p95": self.latency_percentile(95.0),
            "p99": self.latency_percentile(99.0),
        }

    @property
    def model_served(self) -> int:
        """Pages ranked by an actual model (primary or CTR fallback)."""
        return self.by_source.get("primary", 0) + self.by_source.get(
            "ctr_provider", 0
        )


@dataclass
class _CanaryReplica:
    """A lifecycle candidate riding the fleet's routing path."""

    name: str
    service: RankingService
    version: str
    traffic_fraction: float
    salt: int


class ServingFleet:
    """Routes page requests across N independent ranking replicas."""

    def __init__(
        self,
        services: Sequence[RankingService],
        *,
        policy: Optional[FleetPolicy] = None,
        seed: int = 0,
        clock: Optional[Callable[[], float]] = None,
        names: Optional[Sequence[str]] = None,
        sleeper: Optional[Callable[[float], None]] = None,
    ) -> None:
        if len(services) < 1:
            raise ValueError("a fleet needs at least one replica")
        if names is None:
            names = [f"replica-{i}" for i in range(len(services))]
        if len(names) != len(services) or len(set(names)) != len(names):
            raise ValueError("names must be unique, one per replica")
        self.replicas = [
            Replica(name=name, service=service)
            for name, service in zip(names, services)
        ]
        self.policy = policy or FleetPolicy()
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self._clock = clock or time.monotonic
        self._sleep = sleeper or time.sleep
        self.health = FleetHealthMonitor(
            FleetHealthPolicy(
                degraded_quorum=self.policy.degraded_quorum,
                recovery_grace=self.policy.recovery_grace,
            )
        )
        self.stats = FleetStats()
        self.transcript: List[FleetEvent] = []
        #: Registry version the replicas were loaded from (set by
        #: :meth:`from_registry`; None for hand-built fleets).
        self.version: Optional[str] = None
        self._canary: Optional[_CanaryReplica] = None
        self._shed_phase = 0
        # The model-free fallback ranks by the scenario's popularity
        # prior; every replica fronts the same scenario world.
        self._scenario = self.replicas[0].service.scenario
        self.page_size = self.replicas[0].service.page_size
        self._cvr_prior = float(
            self._scenario.config.target_cvr_given_click
        )

    # -- construction ---------------------------------------------------
    @classmethod
    def from_registry(
        cls,
        registry,
        factory,
        scenario,
        n_replicas: int,
        *,
        version: Optional[str] = None,
        policy: Optional[FleetPolicy] = None,
        service_policy=None,
        seed: int = 0,
        clock: Optional[Callable[[], float]] = None,
        **service_kwargs,
    ) -> "ServingFleet":
        """Build a fleet whose replicas serve frozen registry params.

        Each replica loads its *own* digest-verified copy of the given
        version (default: the serving champion), so no replica ever
        aliases a live training model and a corrupted blob is caught
        before it can take traffic.  ``service_kwargs`` (page_size,
        ctr_provider, ...) apply to every replica; ``service_policy``
        is the per-replica :class:`ServingPolicy` (``policy`` being the
        fleet-level one).
        """
        if n_replicas < 1:
            raise ValueError(f"n_replicas must be >= 1, got {n_replicas}")
        if version is None:
            champion = registry.champion
            if champion is None:
                raise ValueError(
                    "registry has no champion; pass version= explicitly"
                )
            version = champion.version
        if clock is not None:
            service_kwargs.setdefault("clock", clock)
        if service_policy is not None:
            service_kwargs.setdefault("policy", service_policy)
        services = [
            RankingService(
                registry.load_model(version, factory), scenario, **service_kwargs
            )
            for _ in range(n_replicas)
        ]
        fleet = cls(services, policy=policy, seed=seed, clock=clock)
        fleet.version = version
        log_event(
            logger,
            "fleet_built_from_registry",
            version=version,
            n_replicas=n_replicas,
        )
        return fleet

    # -- replica liveness ----------------------------------------------
    def _resolve(self, replica: "int | str") -> Replica:
        if isinstance(replica, int):
            return self.replicas[replica]
        for handle in self.replicas:
            if handle.name == replica:
                return handle
        raise KeyError(
            f"unknown replica {replica!r}; fleet has "
            f"{[r.name for r in self.replicas]}"
        )

    def kill_replica(self, replica: "int | str") -> None:
        """Take a replica out of the fleet (chaos: the process died)."""
        handle = self._resolve(replica)
        handle.alive = False
        log_event(logger, "replica_killed", level=30, replica=handle.name)

    def revive_replica(self, replica: "int | str") -> None:
        """Bring a dead replica back with a clean failure budget.

        A revived replica is a fresh process serving the same frozen
        parameters: its breaker and health machine restart clean so
        stale pre-kill failures cannot keep it out of the rotation.
        """
        handle = self._resolve(replica)
        handle.alive = True
        handle.service.breaker.reset()
        handle.service.health.reset()
        log_event(logger, "replica_revived", replica=handle.name)

    def _available(self, handle: Replica) -> bool:
        return (
            handle.alive
            and handle.service.health.state != SHEDDING
            and handle.service.breaker.state != CircuitBreaker.OPEN
        )

    def _eligible(self, exclude: Set[str]) -> List[Replica]:
        return [
            r
            for r in self.replicas
            if r.name not in exclude and self._available(r)
        ]

    def _alive(self, exclude: Set[str]) -> List[Replica]:
        return [
            r for r in self.replicas if r.name not in exclude and r.alive
        ]

    # -- routing --------------------------------------------------------
    def _choose(self, pool: List[Replica]) -> Replica:
        """Power-of-two-choices on queue depth over ``pool``.

        Two distinct replicas are drawn from the fleet RNG and the one
        with the shallower admission queue wins (first draw on ties) --
        the classic load-balancing result: near-uniform load for one
        comparison, no global state.
        """
        if len(pool) == 1:
            return pool[0]
        first, second = self._rng.choice(len(pool), size=2, replace=False)
        a, b = pool[int(first)], pool[int(second)]
        return b if b.service.admission.depth < a.service.admission.depth else a

    def routes_to_canary(self, user: int) -> bool:
        """Would this user's traffic ride the canary replica?"""
        canary = self._canary
        return canary is not None and (
            stable_fraction(user, canary.salt) < canary.traffic_fraction
        )

    # -- canary ---------------------------------------------------------
    def attach_canary(
        self,
        service: RankingService,
        version: str,
        *,
        traffic_fraction: float = 0.1,
        salt: int = 0,
    ) -> None:
        """Register a lifecycle candidate as a real fleet replica.

        Canary users route to this replica through the same door as
        champion traffic -- fleet admission, hedging, transcript -- so
        the canary verdict reflects the exact serving path the model
        would own after promotion.  A sick canary degrades only its
        hash slice: its failures hedge onto champion replicas.
        """
        if self._canary is not None:
            raise RuntimeError(
                f"a canary ({self._canary.version}) is already attached; "
                "detach it first"
            )
        if not 0.0 < traffic_fraction < 1.0:
            raise ValueError(
                f"traffic_fraction must be in (0, 1), got {traffic_fraction}"
            )
        self._canary = _CanaryReplica(
            name=f"canary-{version}",
            service=service,
            version=version,
            traffic_fraction=traffic_fraction,
            salt=salt,
        )
        log_event(logger, "canary_attached", version=version)

    def detach_canary(self) -> None:
        """Remove the canary replica (idempotent); champion pool serves."""
        if self._canary is not None:
            log_event(logger, "canary_detached", version=self._canary.version)
        self._canary = None

    @property
    def canary(self) -> Optional[_CanaryReplica]:
        return self._canary

    @property
    def clock(self) -> Callable[[], float]:
        """The fleet's clock (the injected one, or ``time.monotonic``)."""
        return self._clock

    # -- health ---------------------------------------------------------
    def _update_health(self) -> str:
        available = sum(1 for r in self.replicas if self._available(r))
        return self.health.update(available, len(self.replicas))

    def snapshot(self) -> Dict[str, object]:
        """One structured view of the whole fleet, replica by replica."""
        stats = self.stats
        report: Dict[str, object] = {
            "fleet_health": self.health.snapshot(),
            "requests": stats.requests,
            "served": stats.served,
            "fleet_shed": stats.fleet_shed,
            "hedges": stats.hedges,
            "hedge_wins": stats.hedge_wins,
            "fleet_fallback_pages": stats.fleet_fallback_pages,
            "by_source": dict(stats.by_source),
            "by_replica": dict(stats.by_replica),
            "latency": stats.latency_summary(),
            "replicas": {
                r.name: {"alive": r.alive, **r.service.health_snapshot()}
                for r in self.replicas
            },
        }
        if self._canary is not None:
            report["canary"] = {
                "version": self._canary.version,
                "traffic_fraction": self._canary.traffic_fraction,
                **self._canary.service.health_snapshot(),
            }
        return report

    # Duck-type compatibility with RankingService for dashboards and
    # the canary rollout's arm_health().
    def health_snapshot(self) -> Dict[str, object]:
        return self.snapshot()

    # -- serving --------------------------------------------------------
    def _attempt(
        self,
        handle: Replica,
        user: int,
        candidates: np.ndarray,
        rng: np.random.Generator,
        deadline: Deadline,
    ) -> Tuple[np.ndarray, np.ndarray, str]:
        """One replica attempt; refusals surface as ReplicaUnavailable."""
        if not handle.alive:
            self.stats.replica_refusals += 1
            raise ReplicaUnavailableError(f"{handle.name} is down")
        budget: Optional[float] = None
        if deadline.budget_s is not None:
            remaining = deadline.remaining()
            if remaining <= 0:
                self.stats.replica_refusals += 1
                raise ReplicaUnavailableError(
                    f"deadline expired before {handle.name} could serve"
                )
            budget = remaining
        try:
            page, cvr = handle.service.serve_page(
                user, candidates, rng, deadline_s=budget
            )
        except Exception as exc:
            self.stats.replica_refusals += 1
            raise ReplicaUnavailableError(
                f"{handle.name} refused: {exc}"
            ) from exc
        return page, cvr, handle.service.stats.last_source

    def _hedge_backoff(self, deadline: Deadline) -> float:
        """Jittered pause before a hedge; returns the jitter draw u.

        The draw always happens (keeping the RNG stream aligned across
        runs); the sleep is skipped when the computed pause is zero or
        the deadline cannot afford it.
        """
        u = float(self._rng.random())
        pause = cap_to_deadline(
            jittered_backoff(
                self.policy.hedge_backoff_s, self.policy.hedge_jitter, u
            ),
            deadline,
        )
        if pause > 0 and np.isfinite(pause):
            self._sleep(pause)
        return u

    def _popularity_page(
        self, candidates: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Model-free last resort: the scenario's Zipf popularity prior."""
        scores = self._scenario.item_popularity[candidates]
        cvr = np.full(len(candidates), self._cvr_prior)
        order = np.argsort(-scores)[: self.page_size]
        return candidates[order], cvr[order]

    def _log(self, event: FleetEvent) -> None:
        self.transcript.append(event)

    def serve_page(
        self,
        user: int,
        candidates: np.ndarray,
        rng: np.random.Generator,
        deadline_s: Optional[float] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Route, hedge, and serve one page; always ship or shed loudly.

        Raises :class:`~repro.reliability.errors.RequestShedError` only
        from fleet-level load shedding (lost quorum); an admitted
        request always gets a page -- from a replica if any can serve,
        from the popularity prior only when every replica is down.
        """
        if len(candidates) == 0:
            raise ValueError("cannot serve an empty candidate list")
        request_index = self.stats.requests
        self.stats.requests += 1
        state = self._update_health()
        self.stats.record_health(
            request_index,
            state,
            {
                r.name: (r.service.health.state if r.alive else "down")
                for r in self.replicas
            },
        )
        deadline = Deadline(
            self.policy.deadline_s if deadline_s is None else deadline_s,
            self._clock,
        )

        # Graceful degradation at the fleet door: lost quorum sheds a
        # thin deterministic slice (protecting survivors), total loss
        # sheds most traffic while the popularity fallback keeps the
        # admitted slice alive.
        if state == DEGRADED:
            self._shed_phase += 1
            if self._shed_phase % self.policy.degraded_shed_stride == 0:
                self.stats.fleet_shed += 1
                self._log(
                    FleetEvent(
                        request_index, user, state, "", False, "", 0.0, "", "",
                        "shed",
                    )
                )
                raise RequestShedError(
                    f"fleet shedding under lost quorum (state={state})"
                )
        elif state == CRITICAL:
            self._shed_phase += 1
            if self._shed_phase % self.policy.critical_shed_stride != 0:
                self.stats.fleet_shed += 1
                self._log(
                    FleetEvent(
                        request_index, user, state, "", False, "", 0.0, "", "",
                        "shed",
                    )
                )
                raise RequestShedError(
                    f"fleet shedding under total replica loss (state={state})"
                )

        tried: Set[str] = set()
        page = cvr = None
        source = ""
        served_by = ""
        hedged = False
        hedge_name = ""
        jitter = 0.0

        # Primary routing: the canary slice rides the canary replica
        # when it can take traffic; everything else is power-of-two-
        # choices over the eligible champion pool.
        primary: Optional[Replica] = None
        canary = self._canary
        if canary is not None and self.routes_to_canary(user):
            candidate_handle = Replica(canary.name, canary.service)
            if self._available(candidate_handle):
                primary = candidate_handle
        if primary is None:
            eligible = self._eligible(tried)
            if eligible:
                primary = self._choose(eligible)

        if primary is not None:
            tried.add(primary.name)
            try:
                page, cvr, source = self._attempt(
                    primary, user, candidates, rng, deadline
                )
                served_by = primary.name
            except ReplicaUnavailableError:
                pass

            # Hedge: the primary refused, or it answered from its
            # model-free prior and the deadline can afford one more try
            # against a different replica.
            for _ in range(self.policy.hedge_retries):
                if page is not None and source != "popularity":
                    break
                if (
                    deadline.budget_s is not None
                    and deadline.remaining() <= self.policy.hedge_min_remaining_s
                ):
                    break
                pool = self._eligible(tried) or self._alive(tried)
                if not pool:
                    break
                alt = self._choose(pool)
                tried.add(alt.name)
                jitter = self._hedge_backoff(deadline)
                hedged = True
                hedge_name = alt.name
                self.stats.hedges += 1
                try:
                    alt_page, alt_cvr, alt_source = self._attempt(
                        alt, user, candidates, rng, deadline
                    )
                except ReplicaUnavailableError:
                    continue
                if _SOURCE_RANK[alt_source] > _SOURCE_RANK[source]:
                    page, cvr, source = alt_page, alt_cvr, alt_source
                    served_by = alt.name
                    self.stats.hedge_wins += 1

        if page is None:
            # Every replica is down or refused: the page still ships,
            # ranked by the model-free popularity prior.
            page, cvr = self._popularity_page(candidates)
            source = FLEET_POPULARITY
            served_by = ""
            self.stats.fleet_fallback_pages += 1

        self.stats.record(source, served_by)
        self.stats.record_latency(deadline.elapsed())
        self._log(
            FleetEvent(
                request_index,
                user,
                state,
                primary.name if primary is not None else "",
                hedged,
                hedge_name,
                jitter,
                source,
                served_by,
                "served",
            )
        )
        return page, cvr

    def transcript_lines(self) -> List[str]:
        """The whole episode as stable strings (drill transcripts)."""
        return [event.line() for event in self.transcript]


# ---------------------------------------------------------------------------
# Chaos drills
# ---------------------------------------------------------------------------
@dataclass
class FleetDrillReport:
    """Outcome of one seeded chaos drill against a fleet."""

    requests: int
    served: int
    shed: int
    #: Served pages per scoring source ("primary", "ctr_provider",
    #: "popularity", "fleet_popularity").
    by_source: Dict[str, int]
    #: Fault applications, in order ("kill replica-2 @ step 120", ...).
    fault_log: List[str]
    #: Fault lines interleaved with per-request routing lines -- the
    #: bit-comparable record of the whole episode.  Two drills with the
    #: same fleet seed, traffic seed, and schedule produce identical
    #: transcripts.
    transcript: List[str]

    @property
    def model_served(self) -> int:
        """Pages ranked by an actual model (primary or CTR fallback)."""
        return self.by_source.get("primary", 0) + self.by_source.get(
            "ctr_provider", 0
        )

    @property
    def model_served_fraction(self) -> float:
        """Fraction of *all* requests answered by a real model."""
        if self.requests == 0:
            return 0.0
        return self.model_served / self.requests

    def summary(self) -> Dict[str, object]:
        return {
            "requests": self.requests,
            "served": self.served,
            "shed": self.shed,
            "model_served": self.model_served,
            "model_served_fraction": self.model_served_fraction,
            "by_source": dict(self.by_source),
            "faults": list(self.fault_log),
        }


class FleetChaosDrill:
    """Replays a seeded replica-fault schedule against a live fleet.

    The schedule comes from
    :func:`~repro.reliability.faults.build_fleet_fault_schedule` (or is
    hand-built from :class:`~repro.reliability.faults.ReplicaFault`).
    Three fault kinds are understood:

    * ``kill`` -- the replica drops out of the fleet at ``start`` (and
      revives after ``duration`` steps, if set, with a clean breaker);
    * ``slowdown`` -- every scoring call on the replica burns
      ``latency_s`` seconds, advancing the injected clock when one was
      provided (an object with a mutable ``now``), else really sleeping;
    * ``nan_predictions`` -- the replica's scorer returns all-NaN
      scores, which its sanitizer rejects into the breaker.

    Scoring faults shadow ``service.score_candidates`` on the instance
    (the :class:`~repro.reliability.chaos.ChaosScoring` pattern) and are
    always restored when :meth:`run` returns; kills and revives are real
    fleet state transitions and persist so the post-drill fleet can be
    inspected mid-outage.
    """

    def __init__(
        self,
        fleet: ServingFleet,
        schedule: Sequence[ReplicaFault],
        *,
        clock: Optional[object] = None,
    ) -> None:
        n = len(fleet.replicas)
        for fault in schedule:
            if not 0 <= fault.replica < n:
                raise ValueError(
                    f"fault targets replica {fault.replica} but the fleet "
                    f"has {n} replicas"
                )
        self.fleet = fleet
        self.schedule = list(schedule)
        # Default to the fleet's own clock: when the fleet runs on an
        # injected clock, slowdowns and ``step_duration_s`` advance the
        # same timeline its breakers and deadlines read.
        self._clock = clock if clock is not None else fleet.clock
        self._originals: Dict[int, Callable] = {}
        self._active: Dict[int, tuple] = {}

    # ------------------------------------------------------------------
    def _advance(self, seconds: float) -> None:
        clock = self._clock
        if clock is not None and hasattr(clock, "now"):
            clock.now += seconds
        else:
            time.sleep(seconds)

    def _install(self, idx: int, active: tuple, step: int) -> List[str]:
        service = self.fleet.replicas[idx].service
        if idx not in self._originals:
            self._originals[idx] = service.score_candidates
        base = self._originals[idx]
        name = self.fleet.replicas[idx].name
        if not active:
            if "score_candidates" in vars(service):
                del service.score_candidates
            return [f"[{step:05d}] fault clear {name}"]
        slow = sum(lat for kind, lat in active if kind == REPLICA_SLOWDOWN)
        nan = any(kind == REPLICA_NAN for kind, _ in active)

        def faulted_score_candidates(
            user, candidates, rng, _base=base, _slow=slow, _nan=nan
        ):
            if _slow:
                self._advance(_slow)
            if _nan:
                n = len(candidates)
                return np.full(n, np.nan), np.full(n, np.nan)
            return _base(user, candidates, rng)

        service.score_candidates = faulted_score_candidates
        kinds = "+".join(sorted({kind for kind, _ in active}))
        return [f"[{step:05d}] fault install {name} kinds={kinds}"]

    def _apply_faults(self, step: int) -> List[str]:
        lines: List[str] = []
        for fault in self.schedule:
            if fault.kind != REPLICA_KILL:
                continue
            name = self.fleet.replicas[fault.replica].name
            if step == fault.start:
                self.fleet.kill_replica(fault.replica)
                lines.append(f"[{step:05d}] fault kill {name}")
            elif (
                fault.duration is not None
                and step == fault.start + fault.duration
            ):
                self.fleet.revive_replica(fault.replica)
                lines.append(f"[{step:05d}] fault revive {name}")
        for idx in range(len(self.fleet.replicas)):
            active = tuple(
                sorted(
                    (f.kind, f.latency_s)
                    for f in self.schedule
                    if f.replica == idx
                    and f.kind in (REPLICA_SLOWDOWN, REPLICA_NAN)
                    and f.active(step)
                )
            )
            if active != self._active.get(idx, ()):
                lines.extend(self._install(idx, active, step))
                self._active[idx] = active
        return lines

    def _restore(self) -> None:
        for idx in self._originals:
            service = self.fleet.replicas[idx].service
            if "score_candidates" in vars(service):
                del service.score_candidates
        self._originals.clear()
        self._active.clear()

    # ------------------------------------------------------------------
    def run(
        self,
        n_requests: int,
        *,
        seed: int = 0,
        deadline_s: Optional[float] = None,
        candidates_per_page: int = 20,
        step_duration_s: float = 0.0,
    ) -> FleetDrillReport:
        """Drive seeded traffic through the fleet under the schedule.

        ``step_duration_s`` advances the injected clock between
        requests -- the wall time a real fleet would see between
        arrivals, which is what lets open breakers cool down and probe
        half-open mid-drill.  The default (0.0) freezes time outside
        the faults themselves.
        """
        if n_requests < 1:
            raise ValueError(f"n_requests must be >= 1, got {n_requests}")
        if step_duration_s < 0:
            raise ValueError(
                f"step_duration_s must be >= 0, got {step_duration_s}"
            )
        fleet = self.fleet
        config = fleet.replicas[0].service.scenario.config
        n_candidates = min(candidates_per_page, config.n_items)
        rng = np.random.default_rng(
            np.random.SeedSequence([seed, n_requests, len(fleet.replicas)])
        )
        base = len(fleet.transcript)
        transcript: List[str] = []
        fault_log: List[str] = []
        served = shed = 0
        try:
            for step in range(n_requests):
                if step_duration_s:
                    self._advance(step_duration_s)
                fault_lines = self._apply_faults(step)
                fault_log.extend(fault_lines)
                transcript.extend(fault_lines)
                user = int(rng.integers(0, config.n_users))
                candidates = rng.choice(
                    config.n_items, size=n_candidates, replace=False
                )
                try:
                    fleet.serve_page(user, candidates, rng, deadline_s=deadline_s)
                    served += 1
                except RequestShedError:
                    shed += 1
                transcript.append(fleet.transcript[-1].line())
        finally:
            self._restore()
        by_source: Dict[str, int] = {}
        for event in fleet.transcript[base:]:
            if event.outcome == "served":
                by_source[event.source] = by_source.get(event.source, 0) + 1
        report = FleetDrillReport(
            requests=n_requests,
            served=served,
            shed=shed,
            by_source=by_source,
            fault_log=fault_log,
            transcript=transcript,
        )
        log_event(
            logger,
            "fleet_drill_complete",
            requests=n_requests,
            served=served,
            shed=shed,
            model_served=report.model_served,
        )
        return report
