"""Closed-loop training: the policy-feedback experiment.

Production CVR systems retrain on logs produced by their *own* serving
policy, so exposure bias compounds round over round -- a mechanism the
single-shot offline protocol (Table IV) and the fixed-model A/B test
(Table V) both miss, and one plausible source of the paper's production
gains that a stationary simulator cannot show.

:class:`FeedbackLoopExperiment` runs that loop for one model family:

1. round 0 trains on an organically logged exposure set (the scenario's
   Zipf logging policy);
2. each subsequent round serves pages with the current model, logs the
   served impressions with their outcomes, appends them to the training
   pool, and retrains from scratch;
3. after every round the model is evaluated on a *fixed, policy-free*
   test set (uniform random exposure), so degradation or improvement
   across rounds is attributable to the data the policy collected.

When a :class:`~repro.lifecycle.manager.ModelLifecycleManager` is
attached, step 2 stops trusting the fresh retrain blindly: the model is
published to the registry, shadow-reviewed by the promotion gate
against the serving champion, and -- if it passes -- staged on a canary
slice of the very serving round that logs the next pool of training
data.  Only a candidate that survives both gates takes over as
champion; rejected or demoted retrains leave the previous champion
serving, and the round is evaluated on whatever model actually holds
the traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.data.dataset import InteractionDataset
from repro.data.synthetic import SyntheticScenario
from repro.lifecycle.manager import ModelLifecycleManager
from repro.metrics.ranking import auc
from repro.models.base import MultiTaskModel
from repro.reliability.drift import DriftReference
from repro.reliability.errors import RequestShedError
from repro.simulation.behavior import BehaviorSimulator
from repro.simulation.serving import RankingService
from repro.training import TrainConfig, fit_model
from repro.utils.logging import get_logger

logger = get_logger("simulation.feedback")


@dataclass(frozen=True)
class FeedbackConfig:
    """Shape of the closed loop."""

    rounds: int = 3
    pages_per_round: int = 600
    candidates_per_page: int = 30
    page_size: int = 10
    seed: int = 0

    def __post_init__(self) -> None:
        if self.rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {self.rounds}")
        if self.page_size > self.candidates_per_page:
            raise ValueError("page_size cannot exceed candidates_per_page")


@dataclass
class RoundMetrics:
    """Evaluation after one feedback round."""

    round_index: int
    cvr_auc: float
    cvr_auc_do: Optional[float]
    training_rows: int
    logged_ctr: float
    #: Registry version actually serving after this round (lifecycle
    #: mode only; ``None`` in the unmanaged loop).
    champion_version: Optional[str] = None
    #: Pages refused by admission control during this round's serving.
    shed_pages: int = 0

    def as_row(self) -> List[object]:
        return [
            self.round_index,
            self.training_rows,
            self.logged_ctr,
            self.cvr_auc,
            self.cvr_auc_do if self.cvr_auc_do is not None else float("nan"),
        ]


class FeedbackLoopExperiment:
    """Runs the closed training/serving loop for one model factory."""

    def __init__(
        self,
        scenario: SyntheticScenario,
        model_factory: Callable[[], MultiTaskModel],
        train_config: TrainConfig,
        config: Optional[FeedbackConfig] = None,
        lifecycle: Optional[ModelLifecycleManager] = None,
    ) -> None:
        self.scenario = scenario
        self.model_factory = model_factory
        self.train_config = train_config
        self.config = config or FeedbackConfig()
        self.behavior = BehaviorSimulator(scenario)
        #: Optional lifecycle manager; when set, every retrain passes
        #: the promotion gate and a canary slice before taking traffic.
        self.lifecycle = lifecycle

    # ------------------------------------------------------------------
    def _log_served_round(
        self,
        serve_page: Callable[..., Tuple[np.ndarray, np.ndarray]],
        rng: np.random.Generator,
    ) -> Tuple[Optional[InteractionDataset], int]:
        """Serve one round through ``serve_page``; log it as training data.

        Returns the logged dataset (``None`` if every page was shed) and
        the number of shed pages.  ``serve_page`` is either a plain
        :meth:`RankingService.serve_page` or a canary rollout's
        arm-routing equivalent.
        """
        cfg = self.config
        n_users = self.scenario.config.n_users
        n_items = self.scenario.config.n_items
        users_col: List[np.ndarray] = []
        items_col: List[np.ndarray] = []
        positions_col: List[np.ndarray] = []
        clicks_col: List[np.ndarray] = []
        conversions_col: List[np.ndarray] = []
        shed = 0
        for _ in range(cfg.pages_per_round):
            user = int(rng.integers(0, n_users))
            candidates = rng.choice(
                n_items, size=cfg.candidates_per_page, replace=False
            )
            try:
                page, _ = serve_page(user, candidates, rng)
            except RequestShedError:
                shed += 1
                continue
            outcome = self.behavior.roll_out(user, page, rng)
            users_col.append(np.full(len(page), user))
            items_col.append(page)
            positions_col.append(outcome.positions)
            clicks_col.append(outcome.clicks)
            conversions_col.append(outcome.conversions)
        if not users_col:
            return None, shed
        return (
            self._build_dataset(
                np.concatenate(users_col),
                np.concatenate(items_col),
                np.concatenate(positions_col),
                np.concatenate(clicks_col),
                np.concatenate(conversions_col),
                rng,
            ),
            shed,
        )

    def _build_dataset(
        self, users, items, positions, clicks, conversions, rng
    ) -> InteractionDataset:
        sparse, dense = self.scenario.features_for(users, items, positions, rng)
        return InteractionDataset(
            name=f"{self.scenario.config.name}_served",
            schema=self.scenario.schema,
            sparse=sparse,
            dense=dense,
            clicks=clicks,
            conversions=conversions,
        )

    @staticmethod
    def _concat(datasets: List[InteractionDataset]) -> InteractionDataset:
        first = datasets[0]
        return InteractionDataset(
            name=first.name,
            schema=first.schema,
            sparse={
                k: np.concatenate([d.sparse[k] for d in datasets])
                for k in first.sparse
            },
            dense={
                k: np.concatenate([d.dense[k] for d in datasets])
                for k in first.dense
            },
            clicks=np.concatenate([d.clicks for d in datasets]),
            conversions=np.concatenate([d.conversions for d in datasets]),
        )

    # ------------------------------------------------------------------
    def run(
        self, initial_log: InteractionDataset, test_set: InteractionDataset
    ) -> List[RoundMetrics]:
        """Run the loop; returns per-round evaluation on ``test_set``."""
        rng = np.random.default_rng(self.config.seed)
        # Strip oracle/action columns from the organic log so every pool
        # entry has a homogeneous shape.
        pool: List[InteractionDataset] = [
            self._build_dataset(
                initial_log.sparse["user_id"],
                initial_log.sparse["item_id"],
                initial_log.sparse["position"],
                initial_log.clicks,
                initial_log.conversions,
                rng,
            )
        ]
        results: List[RoundMetrics] = []
        for round_index in range(self.config.rounds):
            training = self._concat(pool)
            model = self.model_factory()
            fit_model(model, training, self.train_config)
            serving_model = model
            champion_version: Optional[str] = None
            shed = 0
            wants_pool = round_index < self.config.rounds - 1

            if self.lifecycle is None:
                if wants_pool:
                    service = RankingService(
                        model, self.scenario, page_size=self.config.page_size
                    )
                    served, shed = self._log_served_round(
                        service.serve_page, rng
                    )
                    if served is not None:
                        pool.append(served)
            else:
                reference = DriftReference.capture(
                    model, training, seed=self.config.seed
                )
                decision = self.lifecycle.submit(
                    model,
                    test_set,
                    train_config=self.train_config,
                    reference=reference,
                    note=f"feedback round {round_index}",
                )
                staged = self.lifecycle.staged_version is not None
                # A staged candidate earns (or loses) the champion slot
                # on the canary slice of this round's serving traffic;
                # the final round still canaries so no candidate ends
                # the run undecided, its log simply feeds no retrain.
                if staged:
                    rollout = self.lifecycle.build_canary(
                        self.scenario, page_size=self.config.page_size
                    )
                    served, shed = self._log_served_round(
                        rollout.serve_page, rng
                    )
                    self.lifecycle.conclude_canary(rollout)
                elif wants_pool:
                    champion_model = self.lifecycle.champion_model()
                    service = RankingService(
                        champion_model or model,
                        self.scenario,
                        page_size=self.config.page_size,
                    )
                    served, shed = self._log_served_round(
                        service.serve_page, rng
                    )
                else:
                    served = None
                if wants_pool and served is not None:
                    pool.append(served)
                champion = self.lifecycle.champion
                if champion is not None:
                    champion_version = champion.version
                    serving_model = self.lifecycle.champion_model() or model
                logger.info(
                    "round %d lifecycle: %s -> %s (champion=%s)",
                    round_index,
                    decision.version,
                    self.lifecycle.decisions[-1].action,
                    champion_version,
                )

            preds = serving_model.predict(test_set.full_batch())
            cvr_auc = auc(test_set.conversions, preds.cvr)
            cvr_auc_do = (
                auc(test_set.oracle_conversion, preds.cvr)
                if test_set.has_oracle
                else None
            )
            results.append(
                RoundMetrics(
                    round_index=round_index,
                    cvr_auc=cvr_auc,
                    cvr_auc_do=cvr_auc_do,
                    training_rows=len(training),
                    logged_ctr=float(training.ctr),
                    champion_version=champion_version,
                    shed_pages=shed,
                )
            )
            logger.info(
                "round %d: rows=%d cvr_auc=%.4f",
                round_index,
                len(training),
                cvr_auc,
            )
        return results


# ----------------------------------------------------------------------
# Delayed conversion feedback
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DelayedFeedbackConfig:
    """Shape of the delayed-feedback retrain cycle.

    Each round ``r`` observes the log at
    ``T_r = initial_log_age_hours + r * round_interval_hours`` (hours on
    the log's clock) and retrains on the *censored-as-of-``T_r``* view:
    conversions that have not yet been attributed look like negatives
    (the delayed-feedback flavour of the paper's fake-negative problem).

    ``correction``:

    * ``"none"``  -- the censored-naive baseline: trust the censored
      labels as-is;
    * ``"importance"`` -- importance-weight each *observed* conversion
      by ``1 / P(delay <= elapsed)`` (capped at ``weight_cap``), the
      inverse of its maturation probability, so early-arriving
      conversions stand in for their still-censored siblings.  Weights
      ride :attr:`repro.data.dataset.Batch.weights` into the
      weight-aware losses (DCMT's SNIPS terms, click-space BCE).
    """

    rounds: int = 2
    round_interval_hours: float = 24.0
    initial_log_age_hours: float = 0.0
    correction: str = "importance"
    weight_cap: float = 20.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {self.rounds}")
        if self.round_interval_hours <= 0:
            raise ValueError("round_interval_hours must be > 0")
        if self.initial_log_age_hours < 0:
            raise ValueError("initial_log_age_hours must be >= 0")
        if self.correction not in ("none", "importance"):
            raise ValueError(
                f"correction must be 'none' or 'importance', "
                f"got {self.correction!r}"
            )
        if self.weight_cap <= 1.0:
            raise ValueError(f"weight_cap must be > 1, got {self.weight_cap}")


def delayed_feedback_weights(
    scenario: SyntheticScenario,
    view: InteractionDataset,
    now: float,
    weight_cap: float,
) -> np.ndarray:
    """Per-row importance weights for a censored-as-of-``now`` view.

    Observed positives get ``min(1 / P(delay <= now - exposure),
    weight_cap)`` -- the inverse-maturation correction -- and every
    other row weight 1.  Uses the scenario's oracle delay CDF; a real
    system would fit the delay distribution from matured cohorts.
    """
    items = view.sparse["item_id"]
    elapsed = now - view.exposure_times
    p_mature = scenario.conversion_delay_cdf(items, elapsed)
    weights = np.ones(len(view), dtype=np.float64)
    observed = view.conversions == 1
    with np.errstate(divide="ignore"):
        inverse = np.where(p_mature > 0, 1.0 / np.maximum(p_mature, 1e-12), weight_cap)
    weights[observed] = np.minimum(inverse[observed], weight_cap)
    return weights


def lifecycle_retrain_view(
    scenario: SyntheticScenario,
    log: InteractionDataset,
    now: float,
    *,
    correction: str = "importance",
    weight_cap: float = 20.0,
) -> InteractionDataset:
    """The training view a lifecycle retrain should fit on at time ``now``.

    This is the delayed-feedback correction wired into the retrain
    path proper: the log is censored to what an observer at ``now``
    has actually seen (unmatured conversions look negative), and --
    under ``correction="importance"`` -- every observed conversion is
    importance-weighted by its inverse maturation probability so the
    early arrivals stand in for their still-censored siblings.  The
    weights ride :attr:`repro.data.dataset.Batch.weights` into the
    weight-aware losses.  ``correction="none"`` is the censored-naive
    strawman (train on the censored labels as-is).
    """
    if correction not in ("none", "importance"):
        raise ValueError(
            f"correction must be 'none' or 'importance', got {correction!r}"
        )
    view = log.censored_as_of(now)
    if correction == "importance":
        weights = delayed_feedback_weights(scenario, view, now, weight_cap)
        view = replace(view, weights=weights)
    return view


class DelayedFeedbackExperiment:
    """Retrain rounds over an aging, censored conversion log.

    Takes a *complete* timestamped log (generated with conversion
    delays enabled) and replays the production situation: at each
    round's observation time only the conversions that have matured are
    visible.  Per round a fresh model trains on that censored view --
    optionally with the importance-weighting correction -- and is
    scored against the fixed oracle-labelled test set, so the delayed-
    feedback damage and the correction's recovery are measured on
    ground truth (``cvr_auc_do``).
    """

    def __init__(
        self,
        scenario: SyntheticScenario,
        model_factory: Callable[[], MultiTaskModel],
        train_config: TrainConfig,
        config: Optional[DelayedFeedbackConfig] = None,
    ) -> None:
        if not scenario.config.has_delays:
            raise ValueError(
                "DelayedFeedbackExperiment needs a delay-enabled scenario "
                "(conversion_delay_mean_hours > 0)"
            )
        self.scenario = scenario
        self.model_factory = model_factory
        self.train_config = train_config
        self.config = config or DelayedFeedbackConfig()

    def censored_view(
        self, log: InteractionDataset, now: float
    ) -> InteractionDataset:
        """The training view for observation time ``now`` (weights set
        per the configured correction)."""
        return lifecycle_retrain_view(
            self.scenario,
            log,
            now,
            correction=self.config.correction,
            weight_cap=self.config.weight_cap,
        )

    def run(
        self, log: InteractionDataset, test_set: InteractionDataset
    ) -> List[RoundMetrics]:
        """Run the retrain rounds; per-round metrics on ``test_set``."""
        cfg = self.config
        results: List[RoundMetrics] = []
        for round_index in range(cfg.rounds):
            now = cfg.initial_log_age_hours + (round_index + 1) * (
                cfg.round_interval_hours
            )
            view = self.censored_view(log, now)
            model = self.model_factory()
            fit_model(model, view, self.train_config)
            preds = model.predict(test_set.full_batch())
            cvr_auc = auc(test_set.conversions, preds.cvr)
            cvr_auc_do = (
                auc(test_set.oracle_conversion, preds.cvr)
                if test_set.has_oracle
                else None
            )
            results.append(
                RoundMetrics(
                    round_index=round_index,
                    cvr_auc=cvr_auc,
                    cvr_auc_do=cvr_auc_do,
                    training_rows=len(view),
                    logged_ctr=float(view.ctr),
                )
            )
            logger.info(
                "delayed round %d: now=%.1fh observed_cvr=%.4f "
                "cvr_auc_do=%s correction=%s",
                round_index,
                now,
                view.cvr_given_click,
                f"{cvr_auc_do:.4f}" if cvr_auc_do is not None else "n/a",
                cfg.correction,
            )
        return results
