"""Closed-loop training: the policy-feedback experiment.

Production CVR systems retrain on logs produced by their *own* serving
policy, so exposure bias compounds round over round -- a mechanism the
single-shot offline protocol (Table IV) and the fixed-model A/B test
(Table V) both miss, and one plausible source of the paper's production
gains that a stationary simulator cannot show.

:class:`FeedbackLoopExperiment` runs that loop for one model family:

1. round 0 trains on an organically logged exposure set (the scenario's
   Zipf logging policy);
2. each subsequent round serves pages with the current model, logs the
   served impressions with their outcomes, appends them to the training
   pool, and retrains from scratch;
3. after every round the model is evaluated on a *fixed, policy-free*
   test set (uniform random exposure), so degradation or improvement
   across rounds is attributable to the data the policy collected.

When a :class:`~repro.lifecycle.manager.ModelLifecycleManager` is
attached, step 2 stops trusting the fresh retrain blindly: the model is
published to the registry, shadow-reviewed by the promotion gate
against the serving champion, and -- if it passes -- staged on a canary
slice of the very serving round that logs the next pool of training
data.  Only a candidate that survives both gates takes over as
champion; rejected or demoted retrains leave the previous champion
serving, and the round is evaluated on whatever model actually holds
the traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.data.dataset import InteractionDataset
from repro.data.synthetic import SyntheticScenario
from repro.lifecycle.manager import ModelLifecycleManager
from repro.metrics.ranking import auc
from repro.models.base import MultiTaskModel
from repro.reliability.drift import DriftReference
from repro.reliability.errors import RequestShedError
from repro.simulation.behavior import BehaviorSimulator
from repro.simulation.serving import RankingService
from repro.training import TrainConfig, fit_model
from repro.utils.logging import get_logger

logger = get_logger("simulation.feedback")


@dataclass(frozen=True)
class FeedbackConfig:
    """Shape of the closed loop."""

    rounds: int = 3
    pages_per_round: int = 600
    candidates_per_page: int = 30
    page_size: int = 10
    seed: int = 0

    def __post_init__(self) -> None:
        if self.rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {self.rounds}")
        if self.page_size > self.candidates_per_page:
            raise ValueError("page_size cannot exceed candidates_per_page")


@dataclass
class RoundMetrics:
    """Evaluation after one feedback round."""

    round_index: int
    cvr_auc: float
    cvr_auc_do: Optional[float]
    training_rows: int
    logged_ctr: float
    #: Registry version actually serving after this round (lifecycle
    #: mode only; ``None`` in the unmanaged loop).
    champion_version: Optional[str] = None
    #: Pages refused by admission control during this round's serving.
    shed_pages: int = 0

    def as_row(self) -> List[object]:
        return [
            self.round_index,
            self.training_rows,
            self.logged_ctr,
            self.cvr_auc,
            self.cvr_auc_do if self.cvr_auc_do is not None else float("nan"),
        ]


class FeedbackLoopExperiment:
    """Runs the closed training/serving loop for one model factory."""

    def __init__(
        self,
        scenario: SyntheticScenario,
        model_factory: Callable[[], MultiTaskModel],
        train_config: TrainConfig,
        config: Optional[FeedbackConfig] = None,
        lifecycle: Optional[ModelLifecycleManager] = None,
    ) -> None:
        self.scenario = scenario
        self.model_factory = model_factory
        self.train_config = train_config
        self.config = config or FeedbackConfig()
        self.behavior = BehaviorSimulator(scenario)
        #: Optional lifecycle manager; when set, every retrain passes
        #: the promotion gate and a canary slice before taking traffic.
        self.lifecycle = lifecycle

    # ------------------------------------------------------------------
    def _log_served_round(
        self,
        serve_page: Callable[..., Tuple[np.ndarray, np.ndarray]],
        rng: np.random.Generator,
    ) -> Tuple[Optional[InteractionDataset], int]:
        """Serve one round through ``serve_page``; log it as training data.

        Returns the logged dataset (``None`` if every page was shed) and
        the number of shed pages.  ``serve_page`` is either a plain
        :meth:`RankingService.serve_page` or a canary rollout's
        arm-routing equivalent.
        """
        cfg = self.config
        n_users = self.scenario.config.n_users
        n_items = self.scenario.config.n_items
        users_col: List[np.ndarray] = []
        items_col: List[np.ndarray] = []
        positions_col: List[np.ndarray] = []
        clicks_col: List[np.ndarray] = []
        conversions_col: List[np.ndarray] = []
        shed = 0
        for _ in range(cfg.pages_per_round):
            user = int(rng.integers(0, n_users))
            candidates = rng.choice(
                n_items, size=cfg.candidates_per_page, replace=False
            )
            try:
                page, _ = serve_page(user, candidates, rng)
            except RequestShedError:
                shed += 1
                continue
            outcome = self.behavior.roll_out(user, page, rng)
            users_col.append(np.full(len(page), user))
            items_col.append(page)
            positions_col.append(outcome.positions)
            clicks_col.append(outcome.clicks)
            conversions_col.append(outcome.conversions)
        if not users_col:
            return None, shed
        return (
            self._build_dataset(
                np.concatenate(users_col),
                np.concatenate(items_col),
                np.concatenate(positions_col),
                np.concatenate(clicks_col),
                np.concatenate(conversions_col),
                rng,
            ),
            shed,
        )

    def _build_dataset(
        self, users, items, positions, clicks, conversions, rng
    ) -> InteractionDataset:
        sparse, dense = self.scenario.features_for(users, items, positions, rng)
        return InteractionDataset(
            name=f"{self.scenario.config.name}_served",
            schema=self.scenario.schema,
            sparse=sparse,
            dense=dense,
            clicks=clicks,
            conversions=conversions,
        )

    @staticmethod
    def _concat(datasets: List[InteractionDataset]) -> InteractionDataset:
        first = datasets[0]
        return InteractionDataset(
            name=first.name,
            schema=first.schema,
            sparse={
                k: np.concatenate([d.sparse[k] for d in datasets])
                for k in first.sparse
            },
            dense={
                k: np.concatenate([d.dense[k] for d in datasets])
                for k in first.dense
            },
            clicks=np.concatenate([d.clicks for d in datasets]),
            conversions=np.concatenate([d.conversions for d in datasets]),
        )

    # ------------------------------------------------------------------
    def run(
        self, initial_log: InteractionDataset, test_set: InteractionDataset
    ) -> List[RoundMetrics]:
        """Run the loop; returns per-round evaluation on ``test_set``."""
        rng = np.random.default_rng(self.config.seed)
        # Strip oracle/action columns from the organic log so every pool
        # entry has a homogeneous shape.
        pool: List[InteractionDataset] = [
            self._build_dataset(
                initial_log.sparse["user_id"],
                initial_log.sparse["item_id"],
                initial_log.sparse["position"],
                initial_log.clicks,
                initial_log.conversions,
                rng,
            )
        ]
        results: List[RoundMetrics] = []
        for round_index in range(self.config.rounds):
            training = self._concat(pool)
            model = self.model_factory()
            fit_model(model, training, self.train_config)
            serving_model = model
            champion_version: Optional[str] = None
            shed = 0
            wants_pool = round_index < self.config.rounds - 1

            if self.lifecycle is None:
                if wants_pool:
                    service = RankingService(
                        model, self.scenario, page_size=self.config.page_size
                    )
                    served, shed = self._log_served_round(
                        service.serve_page, rng
                    )
                    if served is not None:
                        pool.append(served)
            else:
                reference = DriftReference.capture(
                    model, training, seed=self.config.seed
                )
                decision = self.lifecycle.submit(
                    model,
                    test_set,
                    train_config=self.train_config,
                    reference=reference,
                    note=f"feedback round {round_index}",
                )
                staged = self.lifecycle.staged_version is not None
                # A staged candidate earns (or loses) the champion slot
                # on the canary slice of this round's serving traffic;
                # the final round still canaries so no candidate ends
                # the run undecided, its log simply feeds no retrain.
                if staged:
                    rollout = self.lifecycle.build_canary(
                        self.scenario, page_size=self.config.page_size
                    )
                    served, shed = self._log_served_round(
                        rollout.serve_page, rng
                    )
                    self.lifecycle.conclude_canary(rollout)
                elif wants_pool:
                    champion_model = self.lifecycle.champion_model()
                    service = RankingService(
                        champion_model or model,
                        self.scenario,
                        page_size=self.config.page_size,
                    )
                    served, shed = self._log_served_round(
                        service.serve_page, rng
                    )
                else:
                    served = None
                if wants_pool and served is not None:
                    pool.append(served)
                champion = self.lifecycle.champion
                if champion is not None:
                    champion_version = champion.version
                    serving_model = self.lifecycle.champion_model() or model
                logger.info(
                    "round %d lifecycle: %s -> %s (champion=%s)",
                    round_index,
                    decision.version,
                    self.lifecycle.decisions[-1].action,
                    champion_version,
                )

            preds = serving_model.predict(test_set.full_batch())
            cvr_auc = auc(test_set.conversions, preds.cvr)
            cvr_auc_do = (
                auc(test_set.oracle_conversion, preds.cvr)
                if test_set.has_oracle
                else None
            )
            results.append(
                RoundMetrics(
                    round_index=round_index,
                    cvr_auc=cvr_auc,
                    cvr_auc_do=cvr_auc_do,
                    training_rows=len(training),
                    logged_ctr=float(training.ctr),
                    champion_version=champion_version,
                    shed_pages=shed,
                )
            )
            logger.info(
                "round %d: rows=%d cvr_auc=%.4f",
                round_index,
                len(training),
                cvr_auc,
            )
        return results
