"""Closed-loop training: the policy-feedback experiment.

Production CVR systems retrain on logs produced by their *own* serving
policy, so exposure bias compounds round over round -- a mechanism the
single-shot offline protocol (Table IV) and the fixed-model A/B test
(Table V) both miss, and one plausible source of the paper's production
gains that a stationary simulator cannot show.

:class:`FeedbackLoopExperiment` runs that loop for one model family:

1. round 0 trains on an organically logged exposure set (the scenario's
   Zipf logging policy);
2. each subsequent round serves pages with the current model, logs the
   served impressions with their outcomes, appends them to the training
   pool, and retrains from scratch;
3. after every round the model is evaluated on a *fixed, policy-free*
   test set (uniform random exposure), so degradation or improvement
   across rounds is attributable to the data the policy collected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.data.dataset import InteractionDataset
from repro.data.synthetic import SyntheticScenario
from repro.metrics.ranking import auc
from repro.models.base import MultiTaskModel
from repro.simulation.behavior import BehaviorSimulator
from repro.simulation.serving import RankingService
from repro.training import TrainConfig, fit_model
from repro.utils.logging import get_logger

logger = get_logger("simulation.feedback")


@dataclass(frozen=True)
class FeedbackConfig:
    """Shape of the closed loop."""

    rounds: int = 3
    pages_per_round: int = 600
    candidates_per_page: int = 30
    page_size: int = 10
    seed: int = 0

    def __post_init__(self) -> None:
        if self.rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {self.rounds}")
        if self.page_size > self.candidates_per_page:
            raise ValueError("page_size cannot exceed candidates_per_page")


@dataclass
class RoundMetrics:
    """Evaluation after one feedback round."""

    round_index: int
    cvr_auc: float
    cvr_auc_do: Optional[float]
    training_rows: int
    logged_ctr: float

    def as_row(self) -> List[object]:
        return [
            self.round_index,
            self.training_rows,
            self.logged_ctr,
            self.cvr_auc,
            self.cvr_auc_do if self.cvr_auc_do is not None else float("nan"),
        ]


class FeedbackLoopExperiment:
    """Runs the closed training/serving loop for one model factory."""

    def __init__(
        self,
        scenario: SyntheticScenario,
        model_factory: Callable[[], MultiTaskModel],
        train_config: TrainConfig,
        config: Optional[FeedbackConfig] = None,
    ) -> None:
        self.scenario = scenario
        self.model_factory = model_factory
        self.train_config = train_config
        self.config = config or FeedbackConfig()
        self.behavior = BehaviorSimulator(scenario)

    # ------------------------------------------------------------------
    def _log_served_round(
        self, model: MultiTaskModel, rng: np.random.Generator
    ) -> InteractionDataset:
        """Serve one round with ``model`` and log it as training data."""
        cfg = self.config
        service = RankingService(model, self.scenario, page_size=cfg.page_size)
        n_users = self.scenario.config.n_users
        n_items = self.scenario.config.n_items
        users_col: List[np.ndarray] = []
        items_col: List[np.ndarray] = []
        positions_col: List[np.ndarray] = []
        clicks_col: List[np.ndarray] = []
        conversions_col: List[np.ndarray] = []
        for _ in range(cfg.pages_per_round):
            user = int(rng.integers(0, n_users))
            candidates = rng.choice(
                n_items, size=cfg.candidates_per_page, replace=False
            )
            page, _ = service.serve_page(user, candidates, rng)
            outcome = self.behavior.roll_out(user, page, rng)
            users_col.append(np.full(len(page), user))
            items_col.append(page)
            positions_col.append(outcome.positions)
            clicks_col.append(outcome.clicks)
            conversions_col.append(outcome.conversions)
        return self._build_dataset(
            np.concatenate(users_col),
            np.concatenate(items_col),
            np.concatenate(positions_col),
            np.concatenate(clicks_col),
            np.concatenate(conversions_col),
            rng,
        )

    def _build_dataset(
        self, users, items, positions, clicks, conversions, rng
    ) -> InteractionDataset:
        sparse, dense = self.scenario.features_for(users, items, positions, rng)
        return InteractionDataset(
            name=f"{self.scenario.config.name}_served",
            schema=self.scenario.schema,
            sparse=sparse,
            dense=dense,
            clicks=clicks,
            conversions=conversions,
        )

    @staticmethod
    def _concat(datasets: List[InteractionDataset]) -> InteractionDataset:
        first = datasets[0]
        return InteractionDataset(
            name=first.name,
            schema=first.schema,
            sparse={
                k: np.concatenate([d.sparse[k] for d in datasets])
                for k in first.sparse
            },
            dense={
                k: np.concatenate([d.dense[k] for d in datasets])
                for k in first.dense
            },
            clicks=np.concatenate([d.clicks for d in datasets]),
            conversions=np.concatenate([d.conversions for d in datasets]),
        )

    # ------------------------------------------------------------------
    def run(
        self, initial_log: InteractionDataset, test_set: InteractionDataset
    ) -> List[RoundMetrics]:
        """Run the loop; returns per-round evaluation on ``test_set``."""
        rng = np.random.default_rng(self.config.seed)
        # Strip oracle/action columns from the organic log so every pool
        # entry has a homogeneous shape.
        pool: List[InteractionDataset] = [
            self._build_dataset(
                initial_log.sparse["user_id"],
                initial_log.sparse["item_id"],
                initial_log.sparse["position"],
                initial_log.clicks,
                initial_log.conversions,
                rng,
            )
        ]
        results: List[RoundMetrics] = []
        model = None
        for round_index in range(self.config.rounds):
            training = self._concat(pool)
            model = self.model_factory()
            fit_model(model, training, self.train_config)
            preds = model.predict(test_set.full_batch())
            cvr_auc = auc(test_set.conversions, preds.cvr)
            cvr_auc_do = (
                auc(test_set.oracle_conversion, preds.cvr)
                if test_set.has_oracle
                else None
            )
            results.append(
                RoundMetrics(
                    round_index=round_index,
                    cvr_auc=cvr_auc,
                    cvr_auc_do=cvr_auc_do,
                    training_rows=len(training),
                    logged_ctr=float(training.ctr),
                )
            )
            logger.info(
                "round %d: rows=%d cvr_auc=%.4f",
                round_index,
                len(training),
                cvr_auc,
            )
            if round_index < self.config.rounds - 1:
                pool.append(self._log_served_round(model, rng))
        return results
