"""User behaviour rollout for served pages.

Given a ranked page, the simulator draws the hidden attention
confounder per impression and samples clicks from the true click model
(including position bias) and conversions from the true post-click
conversion model -- the same generative process that produced the
offline training logs, so online and offline worlds are consistent.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.synthetic import SyntheticScenario


@dataclass(frozen=True)
class PageViewOutcome:
    """What happened on one served page."""

    items: np.ndarray
    positions: np.ndarray
    clicks: np.ndarray
    conversions: np.ndarray
    true_cvr: np.ndarray

    @property
    def any_click(self) -> bool:
        return bool(self.clicks.any())

    @property
    def any_conversion(self) -> bool:
        return bool(self.conversions.any())

    def any_conversion_in_top(self, k: int) -> bool:
        """Conversion among the first ``k`` display positions."""
        mask = self.positions < k
        return bool((self.conversions[mask]).any())


MODES = ("independent", "single_choice")


class BehaviorSimulator:
    """Samples user behaviour on served pages from the true world.

    Two behaviour modes:

    * ``independent`` (default) -- every impression is clicked
      independently with its position-biased true CTR; matches the
      exposure-log generator, so offline and online worlds coincide.
    * ``single_choice`` -- the user clicks **at most one** item per
      page, chosen by a multinomial over the click logits (with a
      no-click option); models within-page cannibalization, the
      mechanism behind "clickbait" losses.
    """

    def __init__(
        self, scenario: SyntheticScenario, mode: str = "independent"
    ) -> None:
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
        self.scenario = scenario
        self.mode = mode

    def roll_out(
        self, user: int, page_items: np.ndarray, rng: np.random.Generator
    ) -> PageViewOutcome:
        """Simulate one page view under the configured behaviour mode."""
        if self.mode == "single_choice":
            return self._roll_out_single_choice(user, page_items, rng)
        return self._roll_out_independent(user, page_items, rng)

    # ------------------------------------------------------------------
    def _roll_out_independent(
        self, user: int, page_items: np.ndarray, rng: np.random.Generator
    ) -> PageViewOutcome:
        k = len(page_items)
        users = np.full(k, user)
        positions = np.arange(k)
        hidden = self.scenario.sample_hidden(k, rng)
        ctr = self.scenario.true_ctr(users, page_items, positions, hidden)
        cvr = self.scenario.true_cvr(users, page_items, hidden)
        clicks = (rng.random(k) < ctr).astype(np.int64)
        conversions = clicks * (rng.random(k) < cvr).astype(np.int64)
        return PageViewOutcome(
            items=page_items,
            positions=positions,
            clicks=clicks,
            conversions=conversions,
            true_cvr=cvr,
        )

    def _roll_out_single_choice(
        self, user: int, page_items: np.ndarray, rng: np.random.Generator
    ) -> PageViewOutcome:
        """At most one click per page: multinomial over click odds.

        One hidden attention draw applies to the whole page view (the
        user's session state); the no-click option has weight 1 so that
        each item's choice odds reduce to its calibrated click odds.
        """
        k = len(page_items)
        users = np.full(k, user)
        positions = np.arange(k)
        hidden = np.full(k, self.scenario.sample_hidden(1, rng)[0])
        ctr = self.scenario.true_ctr(users, page_items, positions, hidden)
        cvr = self.scenario.true_cvr(users, page_items, hidden)
        odds = ctr / np.clip(1.0 - ctr, 1e-9, None)
        total = odds.sum() + 1.0  # +1: the no-click option
        probabilities = np.concatenate([odds, [1.0]]) / total
        choice = rng.choice(k + 1, p=probabilities)
        clicks = np.zeros(k, dtype=np.int64)
        conversions = np.zeros(k, dtype=np.int64)
        if choice < k:
            clicks[choice] = 1
            if rng.random() < cvr[choice]:
                conversions[choice] = 1
        return PageViewOutcome(
            items=page_items,
            positions=positions,
            clicks=clicks,
            conversions=conversions,
            true_cvr=cvr,
        )
