"""Alternative counterfactual strategies (the paper's future work).

The paper's conclusion: *"In the future, we plan to study the effect of
different counterfactual strategies on our DCMT's performance."*  This
module implements that study.  A strategy decides, for every exposure
in the non-click space ``N``, what label the counterfactual head is
supervised toward and how strongly:

* ``mirror`` -- the paper's mechanism: the counterfactual sample is the
  exact mirror of the factual one, label ``r* = 1 - r`` (always 1 in
  ``N``), full weight.  Simple, but supervises *fake negatives* (items
  the user would have bought) toward "non-conversion" at full strength.
* ``smoothed`` -- mirror labels smoothed toward 0.5 by ``epsilon``:
  ``r* = 1 - epsilon`` in ``N``.  A blunt instrument against fake
  negatives that does not use the model's own beliefs.
* ``self_imputed`` -- the counterfactual label is built from the
  factual head's *detached* prediction: ``r* = 1 - r_hat``.  Exposures
  the model already believes would convert are no longer dragged
  toward "non-conversion"; this is the self-training analogue of the
  DR imputation tower.
* ``confidence_gated`` -- mirror labels, but each non-click exposure's
  weight is scaled by ``1 - r_hat`` (detached): probable fake negatives
  keep their label yet lose influence.

All strategies leave the factual loss and the soft counterfactual
regularizer untouched; they only modify the ``N*`` term of Eq. (9).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

STRATEGIES = ("mirror", "smoothed", "self_imputed", "confidence_gated")


def counterfactual_targets(
    strategy: str,
    conversions: np.ndarray,
    factual_predictions: np.ndarray,
    epsilon: float = 0.1,
) -> Tuple[np.ndarray, np.ndarray]:
    """Counterfactual labels and weight scales for the ``N*`` loss term.

    Parameters
    ----------
    strategy:
        One of :data:`STRATEGIES`.
    conversions:
        Observed conversion labels ``r`` (used by the mirror).
    factual_predictions:
        Detached factual-head predictions ``r_hat`` (numpy array); used
        by the model-aware strategies.
    epsilon:
        Smoothing amount for ``"smoothed"`` (ignored elsewhere).

    Returns
    -------
    (labels, weight_scale)
        Per-sample counterfactual labels in ``[0, 1]`` and multiplicative
        weight scales (1 everywhere except ``confidence_gated``).  Both
        arrays cover the whole batch; the loss masks them to ``N``.
    """
    if strategy not in STRATEGIES:
        raise ValueError(f"strategy must be one of {STRATEGIES}, got {strategy!r}")
    if not 0.0 <= epsilon < 0.5:
        raise ValueError(f"epsilon must be in [0, 0.5), got {epsilon}")
    r = np.asarray(conversions, dtype=float)
    r_hat = np.clip(np.asarray(factual_predictions, dtype=float), 0.0, 1.0)
    ones = np.ones_like(r)

    if strategy == "mirror":
        return 1.0 - r, ones
    if strategy == "smoothed":
        labels = np.clip(1.0 - r, epsilon, 1.0 - epsilon)
        return labels, ones
    if strategy == "self_imputed":
        return 1.0 - r_hat, ones
    # confidence_gated
    return 1.0 - r, 1.0 - r_hat
