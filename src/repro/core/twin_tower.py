"""The twin tower of DCMT (Fig. 6, Eq. (11)-(12)).

Simulates the decision process of conversion: *common* parameters
(``theta_d``, the shared deep trunk) represent shared reasoning over
the input, while *specific* parameters (``theta_f`` / ``theta_cf``)
represent the divergent final decisions -- conversion vs
non-conversion.

Wide&deep form (Eq. (12))::

    r_hat    = sigmoid( phi(x_w; theta_f_w)  + psi(x_d; theta_d, theta_f_d) )
    r_hat*   = sigmoid( phi(x_w; theta_cf_w) + psi(x_d; theta_d, theta_cf_d) )

where ``phi`` is linear regression on the wide embedding and ``psi``
shares all hidden layers (``theta_d``) and differs only in the final
projection.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.autograd import ops
from repro.autograd.tensor import Tensor
from repro.nn.linear import Linear
from repro.nn.mlp import MLP
from repro.nn.module import Module


class TwinTower(Module):
    """Factual + counterfactual CVR heads over a shared deep trunk.

    Parameters
    ----------
    deep_width / wide_width:
        Widths of the deep and wide feature embeddings (``wide_width=0``
        degenerates to a pure deep twin tower).
    hidden_sizes:
        Shared trunk sizes, e.g. the paper's [64, 64, 32].
    rng:
        Initialization generator.
    """

    def __init__(
        self,
        deep_width: int,
        wide_width: int,
        hidden_sizes: Sequence[int],
        rng: np.random.Generator,
        activation: str = "relu",
        dropout: float = 0.0,
    ) -> None:
        super().__init__()
        if not hidden_sizes:
            raise ValueError("twin tower needs at least one shared hidden layer")
        # theta_d: common deep trunk.
        self.trunk = MLP(
            deep_width,
            list(hidden_sizes),
            rng,
            activation=activation,
            dropout=dropout,
        )
        trunk_width = self.trunk.out_width
        # theta_f_d / theta_cf_d: specific deep projections.
        self.head_factual = Linear(trunk_width, 1, rng, weight_init="xavier_uniform")
        self.head_counterfactual = Linear(
            trunk_width, 1, rng, weight_init="xavier_uniform"
        )
        # theta_f_w / theta_cf_w: specific wide (linear) parts.
        self.wide_factual: Optional[Linear] = (
            Linear(wide_width, 1, rng, weight_init="xavier_uniform")
            if wide_width > 0
            else None
        )
        self.wide_counterfactual: Optional[Linear] = (
            Linear(wide_width, 1, rng, weight_init="xavier_uniform")
            if wide_width > 0
            else None
        )

    def forward(
        self, deep: Tensor, wide: Optional[Tensor]
    ) -> Tuple[Tensor, Tensor]:
        """Return ``(factual_cvr, counterfactual_cvr)`` probabilities."""
        shared = self.trunk(deep)
        logit_f = ops.squeeze(self.head_factual(shared), axis=1)
        logit_cf = ops.squeeze(self.head_counterfactual(shared), axis=1)
        if wide is not None and self.wide_factual is not None:
            logit_f = logit_f + ops.squeeze(self.wide_factual(wide), axis=1)
            logit_cf = logit_cf + ops.squeeze(self.wide_counterfactual(wide), axis=1)
        return ops.sigmoid(logit_f), ops.sigmoid(logit_cf)
