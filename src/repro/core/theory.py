"""Numerical verification of Theorem III.1 and the Section II analysis.

Theorem III.1 states that the DCMT CVR risk is unbiased over ``D``,
``Bias = |E^DCMT - E^ground-truth| = 0``, under two conditions:

1. ``o_ij = ô_ij`` -- read literally (as the paper does right below the
   theorem statement): the propensity prediction is *exact per
   realisation*, i.e. ``ô = 1`` on the click space and ``ô = 0`` on the
   non-click space;
2. ``r̂ + r̂* = 1`` -- the counterfactual prior holds exactly, so the
   regularizer vanishes and ``e(1-r, r̂*) = e(r, r̂)`` (log-loss
   mirror identity).

Under these conditions the DCMT risk equals the ground-truth risk of
Eq. (1) *identically* (not just in expectation):
:func:`theorem_iii1_bias` verifies this.

A sharper observation, also verified here
(:func:`stochastic_propensity_scaling`): when ``ô`` equals the true
*stochastic* propensity ``p`` (the usual IPW setting) and clicks are
resampled, the factual and counterfactual terms each converge to one
full copy of the ground-truth risk, so ``E[E^DCMT] = 2 x
E^ground-truth``.  The constant factor does not move the minimiser, so
the estimator remains minimiser-consistent -- but exact unbiasedness
really does require the theorem's degenerate-propensity reading.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.causal import ideal_risk, log_loss_elementwise

_EPS = 1e-12


def dcmt_risk(
    clicks: np.ndarray,
    observed_labels: np.ndarray,
    cvr_pred: np.ndarray,
    cvr_cf_pred: np.ndarray,
    propensity: np.ndarray,
    lambda1: float = 0.0,
) -> float:
    """Eq. (9) evaluated in numpy (no SNIPS; the theorem's form).

    ``observed_labels`` are the observed conversions ``r`` (zero in the
    non-click space); the counterfactual term uses the mirrored labels
    ``r* = 1 - r``.
    """
    o = np.asarray(clicks, dtype=float)
    r = np.asarray(observed_labels, dtype=float)
    p = np.clip(np.asarray(propensity, dtype=float), _EPS, 1.0 - _EPS)
    n = len(o)

    factual = o * log_loss_elementwise(r, cvr_pred) / p
    counterfactual = (1.0 - o) * log_loss_elementwise(1.0 - r, cvr_cf_pred) / (1.0 - p)
    regularizer = lambda1 * np.abs(1.0 - (cvr_pred + cvr_cf_pred))
    return float((factual + counterfactual + regularizer).sum() / n)


def theorem_iii1_bias(
    clicks: np.ndarray,
    potential_labels: np.ndarray,
    cvr_pred: np.ndarray,
) -> float:
    """Bias of the DCMT risk under the theorem's exact conditions.

    Condition 1: ``ô = o`` per realisation (propensity 1 on clicks, 0
    elsewhere; clipped infinitesimally for the division).  Condition 2:
    ``r̂* = 1 - r̂``.  Returns ``|E^DCMT - E^ground-truth|``, which the
    theorem says is zero -- and it is, identically, for every click
    realisation.
    """
    o = np.asarray(clicks, dtype=float)
    r_do = np.asarray(potential_labels, dtype=float)
    cvr_cf = 1.0 - np.asarray(cvr_pred, dtype=float)
    # The theorem treats r_ij as the same quantity in E^DCMT and in the
    # ground truth, i.e. it assumes the conversion labels in N are the
    # true potential outcomes.  The gap between that assumption and the
    # all-zero observed labels in N is precisely the fake-negative
    # problem that the counterfactual regularizer targets in practice
    # (see test_fake_negatives_break_the_theorem).
    risk = dcmt_risk(o, r_do, cvr_pred, cvr_cf, propensity=o, lambda1=0.0)
    truth = ideal_risk(r_do, cvr_pred)
    return abs(risk - truth)


def stochastic_propensity_scaling(
    potential_labels: np.ndarray,
    cvr_pred: np.ndarray,
    propensity: np.ndarray,
    rng: np.random.Generator,
    n_rounds: int = 500,
) -> float:
    """Monte-Carlo ``E[E^DCMT] / E^ground-truth`` under stochastic ``ô = p``.

    With the counterfactual prior satisfied, the ratio converges to 2:
    each of the factual and counterfactual IPW terms is an unbiased
    estimator of the *full* entire-space risk.  (The paper's theorem
    avoids the factor by reading ``o = ô`` as degenerate propensities.)
    """
    r_do = np.asarray(potential_labels, dtype=float)
    p = np.asarray(propensity, dtype=float)
    cvr_cf = 1.0 - np.asarray(cvr_pred, dtype=float)
    risks = np.empty(n_rounds)
    for i in range(n_rounds):
        clicks = (rng.random(len(p)) < p).astype(float)
        risks[i] = dcmt_risk(clicks, r_do, cvr_pred, cvr_cf, p, lambda1=0.0)
    return float(risks.mean() / ideal_risk(r_do, cvr_pred))


def counterfactual_identity_gap(
    labels: np.ndarray, cvr_pred: np.ndarray
) -> float:
    """The algebraic identity behind the theorem.

    When ``r̂* = 1 - r̂``, the counterfactual log-loss on the mirrored
    label equals the factual log-loss on the original label:
    ``e(1-r, 1-r̂) = e(r, r̂)``.  Returns the max abs violation (zero up
    to floating-point error).
    """
    r = np.asarray(labels, dtype=float)
    lhs = log_loss_elementwise(1.0 - r, 1.0 - np.asarray(cvr_pred, dtype=float))
    rhs = log_loss_elementwise(r, cvr_pred)
    return float(np.max(np.abs(lhs - rhs)))
