"""DCMT: the Direct entire-space Causal Multi-Task framework (Fig. 3).

Components (Section III-A):

* shared :class:`~repro.models.components.FeatureEmbedding` split into
  deep and wide embeddings;
* a wide&deep **CTR tower** predicting the click propensity ``o_hat``;
* the **twin CVR tower** predicting the factual CVR ``r_hat`` and the
  counterfactual CVR ``r_hat*``;
* the **CTCVR head** ``t_hat = o_hat * r_hat``.

Training loss (Eq. (14))::

    L = E_CTR + w_cvr * E_DCMT + w_ctcvr * E_CTCVR  (+ lambda_2 ||theta||^2)

where ``E_DCMT`` is the entire-space counterfactual CVR loss of
Eq. (9) with SNIPS weights (Eq. (13)).  The L2 term is applied through
the optimizer's ``weight_decay`` (mathematically identical, cheaper).

Variants:

* ``variant="full"`` -- the complete DCMT;
* ``variant="pd"``   -- DCMT_PD ablation: propensity-based debiasing
  over ``D`` only (Eq. (7)), no counterfactual head in the loss;
* ``variant="cf"``   -- DCMT_CF ablation: counterfactual mechanism
  without inverse-propensity weights.

``constraint="hard"`` renormalises the twin predictions so that
``r_hat + r_hat* = 1`` exactly (and drops the regularizer), the
configuration the paper shows to be harmful in Fig. 8(c)/(d).  Our
projection enforces the constraint exactly and reproduces the AUC
damage of Fig. 8(c); the narrow-band prediction collapse of Fig. 8(d)
is specific to the authors' implementation and does not occur here
(see EXPERIMENTS.md).
"""

from __future__ import annotations

import numpy as np

from repro.autograd import functional
from repro.autograd.tensor import Tensor
from repro.core.strategies import STRATEGIES, counterfactual_targets
from repro.core.losses import dcmt_cvr_loss, entire_space_ipw_loss
from repro.core.twin_tower import TwinTower
from repro.data.dataset import Batch
from repro.data.schema import FeatureSchema
from repro.models.base import ModelConfig, MultiTaskModel
from repro.models.components import FeatureEmbedding, WideDeepTower, probability

VARIANTS = ("full", "pd", "cf")
CONSTRAINTS = ("soft", "hard")


class DCMT(MultiTaskModel):
    """The DCMT model and its ablation variants.

    Parameters
    ----------
    schema, config:
        Feature inventory and shared hyper-parameters.
    variant:
        ``"full"``, ``"pd"`` or ``"cf"`` (Table III, "Our methods").
    lambda1:
        Weight of the counterfactual regularizer.  The paper reports
        0.001 as the optimum (Fig. 8(c)) under its unnormalised loss
        scale; with this implementation's SNIPS-normalised O(1) loss
        terms the equivalent optimum sits near 2.0 (see the Fig. 8(c)
        reproduction in ``benchmarks/``), hence the default.
    use_snips:
        Apply the self-normalisation of Eq. (13) (paper: yes).
    constraint:
        ``"soft"`` (regularizer) or ``"hard"`` (force
        ``r_hat + r_hat* = 1``; Fig. 8(d) failure mode).
    cf_strategy:
        Counterfactual supervision strategy for the ``N*`` term (see
        :mod:`repro.core.strategies`): ``"mirror"`` (the paper),
        ``"smoothed"``, ``"self_imputed"`` or ``"confidence_gated"``.
    cf_epsilon:
        Label smoothing amount for ``cf_strategy="smoothed"``.
    """

    def __init__(
        self,
        schema: FeatureSchema,
        config: ModelConfig,
        variant: str = "full",
        lambda1: float = 2.0,
        use_snips: bool = True,
        constraint: str = "soft",
        cf_strategy: str = "mirror",
        cf_epsilon: float = 0.1,
    ) -> None:
        super().__init__(config)
        if variant not in VARIANTS:
            raise ValueError(f"variant must be one of {VARIANTS}, got {variant!r}")
        if constraint not in CONSTRAINTS:
            raise ValueError(
                f"constraint must be one of {CONSTRAINTS}, got {constraint!r}"
            )
        if lambda1 < 0:
            raise ValueError(f"lambda1 must be >= 0, got {lambda1}")
        if cf_strategy not in STRATEGIES:
            raise ValueError(
                f"cf_strategy must be one of {STRATEGIES}, "
                f"got {cf_strategy!r}"
            )
        self.variant = variant
        self.model_name = "dcmt" if variant == "full" else f"dcmt_{variant}"
        self.lambda1 = lambda1
        self.use_snips = use_snips
        self.constraint = constraint
        self.cf_strategy = cf_strategy
        self.cf_epsilon = cf_epsilon

        rng = np.random.default_rng(config.seed)
        self.embedding = FeatureEmbedding(schema, config.embedding_dim, rng)
        self.ctr_tower = WideDeepTower(
            deep_width=self.embedding.deep_width,
            wide_width=self.embedding.wide_width,
            hidden_sizes=config.hidden_sizes,
            rng=rng,
            activation=config.activation,
            dropout=config.dropout,
        )
        self.twin_tower = TwinTower(
            deep_width=self.embedding.deep_width,
            wide_width=self.embedding.wide_width,
            hidden_sizes=config.hidden_sizes,
            rng=rng,
            activation=config.activation,
            dropout=config.dropout,
        )

    # ------------------------------------------------------------------
    def forward_tensors(self, batch: Batch):
        deep, wide = self.embedding(batch)
        ctr = probability(self.ctr_tower(deep, wide))
        cvr, cvr_cf = self.twin_tower(deep, wide)
        if self.constraint == "hard":
            # Force r_hat + r_hat* = 1 by projection (Fig. 8(d) setup).
            total = cvr + cvr_cf
            cvr = cvr / total
            cvr_cf = cvr_cf / total
        return {
            "ctr": ctr,
            "cvr": cvr,
            "cvr_counterfactual": cvr_cf,
            "ctcvr": ctr * cvr,
        }

    # ------------------------------------------------------------------
    def cvr_task_loss(self, outputs, batch: Batch) -> Tensor:
        """The E_DCMT term (variant-dependent)."""
        propensity = outputs["ctr"].data  # detached: importance weights
        if self.variant == "pd":
            return entire_space_ipw_loss(
                outputs["cvr"],
                batch.clicks,
                batch.conversions,
                propensity,
                floor=self.config.propensity_floor,
                use_snips=self.use_snips,
                sample_weights=batch.weights,
            )
        # "full" uses propensity weights, "cf" does not.
        lambda1 = 0.0 if self.constraint == "hard" else self.lambda1
        cf_labels, cf_scale = counterfactual_targets(
            self.cf_strategy,
            batch.conversions,
            outputs["cvr"].data,  # detached factual predictions
            epsilon=self.cf_epsilon,
        )
        return dcmt_cvr_loss(
            outputs["cvr"],
            outputs["cvr_counterfactual"],
            batch.clicks,
            batch.conversions,
            propensity,
            lambda1=lambda1,
            floor=self.config.propensity_floor,
            use_snips=self.use_snips,
            use_propensity=(self.variant == "full"),
            counterfactual_labels=cf_labels,
            counterfactual_weight_scale=cf_scale,
            sample_weights=batch.weights,
        )

    def loss(self, batch: Batch) -> Tensor:
        outputs = self.forward_tensors(batch)
        ctr_loss = functional.binary_cross_entropy(outputs["ctr"], batch.clicks)
        cvr_loss = self.cvr_task_loss(outputs, batch)
        if batch.weights is None:
            ctcvr_loss = functional.binary_cross_entropy(
                outputs["ctcvr"], batch.conversions
            )
        else:
            # Per-row corrections (delayed-feedback importance weights)
            # apply to the conversion-label terms; the CTR term stays
            # unweighted because clicks are observed instantly.
            errors = functional.binary_cross_entropy(
                outputs["ctcvr"], batch.conversions, reduction="none"
            )
            ctcvr_loss = functional.weighted_mean(
                errors,
                np.asarray(batch.weights, dtype=float),
                denominator=float(batch.size),
            )
        return (
            ctr_loss
            + self.config.cvr_weight * cvr_loss
            + self.config.ctcvr_weight * ctcvr_loss
        )
