"""The unified causal objective layer (Eq. (5)-(9), (13)).

One audited home for every causal weighting used across the Table III
model zoo: propensity clipping, plain IPW and counterfactual-IPW
weights, SNIPS self-normalisation, and the doubly-robust risk.  DCMT
(:mod:`repro.core.dcmt`) and the ESCM2/Multi-IPW/Multi-DR baselines
(:mod:`repro.models.escm2`) consume the same primitives, so their
treatment of ``o_hat`` cannot silently drift apart (the cross-model
parity test in ``tests/models/test_weight_parity.py`` pins this).

All importance weights are plain numpy (detached): gradients never flow
through propensities, matching the stop-gradient treatment of the
baselines.  Propensities are clipped to ``[floor, 1-floor]`` -- the
paper clips ``o_hat`` to the open interval (0, 1) to avoid NaN losses
(Section III-F); a positive floor additionally bounds the weight
variance.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.autograd import functional, ops
from repro.autograd.tensor import Tensor


def clip_propensity(propensity: np.ndarray, floor: float) -> np.ndarray:
    """Clip ``o_hat`` into ``[floor, 1 - floor]``."""
    if not 0.0 < floor < 0.5:
        raise ValueError(f"propensity floor must be in (0, 0.5), got {floor}")
    return np.clip(np.asarray(propensity, dtype=float), floor, 1.0 - floor)


def ipw_weights(
    clicks: np.ndarray, propensity: np.ndarray, floor: float
) -> np.ndarray:
    """Factual inverse-propensity weights ``o / clip(o_hat)``.

    Non-zero on clicked rows only -- the ``1/o_hat`` re-weighting shared
    by ESCM2-IPW (Eq. (5)) and DCMT's factual term (Eq. (7)/(9)).
    """
    o = np.asarray(clicks, dtype=float)
    return o / clip_propensity(propensity, floor)


def counterfactual_ipw_weights(
    clicks: np.ndarray, propensity: np.ndarray, floor: float
) -> np.ndarray:
    """Counterfactual weights ``(1 - o) / (1 - clip(o_hat))``.

    Non-zero on non-clicked rows only -- the mirror-space re-weighting
    of DCMT's counterfactual term (Eq. (9)).
    """
    o = np.asarray(clicks, dtype=float)
    return (1.0 - o) / (1.0 - clip_propensity(propensity, floor))


def ipw_risk(
    errors: Tensor,
    clicks: np.ndarray,
    propensity: np.ndarray,
    floor: float,
    denominator: Optional[float] = None,
) -> Tensor:
    """Eq. (5): ``sum_O e / o_hat``, normalised by ``denominator``.

    ``denominator`` defaults to ``|D|`` (the batch size), the
    entire-space normalisation ESCM2 uses.
    """
    weights = ipw_weights(clicks, propensity, floor)
    denom = float(len(weights)) if denominator is None else float(denominator)
    return functional.weighted_mean(errors, weights, denominator=denom)


def doubly_robust_risk(
    errors: Tensor,
    imputed_errors: Tensor,
    clicks: np.ndarray,
    propensity: np.ndarray,
    floor: float,
    denominator: Optional[float] = None,
) -> Tensor:
    """Eq. (6): ``mean(e_hat) + mean(o * (e - e_hat) / o_hat)``.

    The error-imputation term covers the entire space; the
    propensity-weighted residual corrects it on the click space.
    """
    weights = ipw_weights(clicks, propensity, floor)
    denom = float(len(weights)) if denominator is None else float(denominator)
    direct = imputed_errors.mean()
    correction = functional.weighted_mean(
        errors - imputed_errors, weights, denominator=denom
    )
    return direct + correction


def imputation_regression_loss(
    errors: Tensor,
    imputed_errors: Tensor,
    clicks: np.ndarray,
    propensity: np.ndarray,
    floor: float,
    denominator: Optional[float] = None,
) -> Tensor:
    """Propensity-weighted squared residual that trains the DR tower.

    ``errors`` is detached inside: the imputation tower should chase the
    CVR error, not push it.
    """
    weights = ipw_weights(clicks, propensity, floor)
    denom = float(len(weights)) if denominator is None else float(denominator)
    residual = Tensor(np.asarray(errors.data)) - imputed_errors
    return functional.weighted_mean(
        residual * residual, weights, denominator=denom
    )


def snips_weights(
    clicks: np.ndarray,
    propensity: np.ndarray,
    floor: float = 0.03,
    sample_weights: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Self-normalised inverse propensity weights (Eq. (13)).

    Returns ``(factual_weights, counterfactual_weights)``:

    * factual weights are ``(1/o_hat) / sum_O(1/o_hat)`` on clicked
      rows, zero elsewhere;
    * counterfactual weights are ``(1/(1-o_hat)) / sum_N*(1/(1-o_hat))``
      on non-clicked rows, zero elsewhere.

    Each group sums to exactly 1 (the SNIPS normalisation), which
    removes the propensity-scale variance of plain IPW.

    ``sample_weights`` (optional, detached) multiply the *raw* weights
    before self-normalisation -- this is where per-row corrections such
    as the delayed-feedback importance weights compose with the causal
    weighting.  ``None`` is bit-exact with the unweighted path.
    """
    o = np.asarray(clicks, dtype=float)
    p = clip_propensity(propensity, floor)
    raw_f = o / p
    raw_cf = (1.0 - o) / (1.0 - p)
    if sample_weights is not None:
        w = np.asarray(sample_weights, dtype=float)
        raw_f = raw_f * w
        raw_cf = raw_cf * w
    sum_f = raw_f.sum()
    sum_cf = raw_cf.sum()
    factual = raw_f / sum_f if sum_f > 0 else raw_f
    counterfactual = raw_cf / sum_cf if sum_cf > 0 else raw_cf
    return factual, counterfactual


def entire_space_ipw_loss(
    cvr: Tensor,
    clicks: np.ndarray,
    conversions: np.ndarray,
    propensity: np.ndarray,
    floor: float = 0.03,
    use_snips: bool = True,
    sample_weights: Optional[np.ndarray] = None,
) -> Tensor:
    """Eq. (7): the naive entire-space propensity-debiased loss (DCMT_PD).

    A single (factual) CVR head is trained everywhere: with weight
    ``1/o_hat`` on clicked rows and ``1/(1-o_hat)`` on non-clicked rows,
    using the *observed* labels -- which are all 0 in ``N``, i.e. the
    fake-negative problem the counterfactual mechanism then fixes.

    ``sample_weights`` compose per-row corrections (delayed-feedback
    importance weights) into the causal weights; ``None`` is bit-exact
    with the unweighted path.
    """
    errors = functional.binary_cross_entropy(cvr, conversions, reduction="none")
    if use_snips:
        w_f, w_cf = snips_weights(
            clicks, propensity, floor, sample_weights=sample_weights
        )
        weights = w_f + w_cf
        return functional.weighted_mean(errors, weights, denominator=2.0)
    o = np.asarray(clicks, dtype=float)
    weights = ipw_weights(o, propensity, floor) + counterfactual_ipw_weights(
        o, propensity, floor
    )
    if sample_weights is not None:
        weights = weights * np.asarray(sample_weights, dtype=float)
    return functional.weighted_mean(errors, weights, denominator=float(len(o)))


def counterfactual_regularizer(cvr: Tensor, cvr_cf: Tensor) -> Tensor:
    """The soft constraint ``mean_D |1 - (r_hat + r_hat*)|`` of Eq. (9)."""
    return ops.absolute(1.0 - (cvr + cvr_cf)).mean()


def dcmt_cvr_loss(
    cvr: Tensor,
    cvr_cf: Tensor,
    clicks: np.ndarray,
    conversions: np.ndarray,
    propensity: np.ndarray,
    lambda1: float = 0.001,
    floor: float = 0.03,
    use_snips: bool = True,
    use_propensity: bool = True,
    counterfactual_labels: np.ndarray = None,
    counterfactual_weight_scale: np.ndarray = None,
    sample_weights: Optional[np.ndarray] = None,
) -> Tensor:
    """The full DCMT CVR loss (Eq. (9) with the Eq. (13) weights).

    Three terms:

    1. factual loss in ``O``: ``e(r, r_hat) / o_hat``;
    2. counterfactual loss in ``N*``: ``e(r*, r_hat*) / (1 - o_hat)``
       with the mirrored label ``r* = 1 - r`` (``= 1`` in ``N``);
    3. the soft counterfactual regularizer weighted by ``lambda1``.

    ``use_propensity=False`` gives the DCMT_CF ablation: uniform weights
    inside each space (the counterfactual mechanism without
    propensity-based debiasing).

    ``counterfactual_labels`` / ``counterfactual_weight_scale``
    override the mirror labels and per-sample weights of term 2 --
    the hook used by :mod:`repro.core.strategies` (the paper's
    future-work study of alternative counterfactual strategies).

    ``sample_weights`` multiply the per-row weights of both spaces
    (before SNIPS self-normalisation where applicable) -- the
    delayed-feedback importance-correction hook.  ``None`` is
    bit-exact with the unweighted path.
    """
    o = np.asarray(clicks, dtype=float)
    n = float(len(o))
    factual_errors = functional.binary_cross_entropy(
        cvr, conversions, reduction="none"
    )
    if counterfactual_labels is None:
        counterfactual_labels = 1.0 - np.asarray(conversions, dtype=float)
    counterfactual_errors = functional.binary_cross_entropy(
        cvr_cf, counterfactual_labels, reduction="none"
    )
    scale = (
        np.ones_like(o)
        if counterfactual_weight_scale is None
        else np.asarray(counterfactual_weight_scale, dtype=float)
    )

    sw = (
        None
        if sample_weights is None
        else np.asarray(sample_weights, dtype=float)
    )
    if use_propensity:
        if use_snips:
            w_f, w_cf = snips_weights(o, propensity, floor, sample_weights=sw)
            factual_term = functional.weighted_mean(
                factual_errors, w_f, denominator=1.0
            )
            counterfactual_term = functional.weighted_mean(
                counterfactual_errors, w_cf * scale, denominator=1.0
            )
        else:
            w_f = ipw_weights(o, propensity, floor)
            w_cf = counterfactual_ipw_weights(o, propensity, floor)
            if sw is not None:
                w_f = w_f * sw
                w_cf = w_cf * sw
            factual_term = functional.weighted_mean(
                factual_errors, w_f, denominator=n
            )
            counterfactual_term = functional.weighted_mean(
                counterfactual_errors, scale * w_cf, denominator=n
            )
    else:
        w_f = o if sw is None else o * sw
        w_cf = (1.0 - o) if sw is None else (1.0 - o) * sw
        n_clicked = max(w_f.sum(), 1.0)
        n_unclicked = max(w_cf.sum(), 1.0)
        factual_term = functional.weighted_mean(
            factual_errors, w_f, denominator=n_clicked
        )
        counterfactual_term = functional.weighted_mean(
            counterfactual_errors, scale * w_cf, denominator=n_unclicked
        )

    loss = factual_term + counterfactual_term
    if lambda1 > 0:
        loss = loss + lambda1 * counterfactual_regularizer(cvr, cvr_cf)
    return loss
