"""The paper's primary contribution: the DCMT framework.

* :class:`~repro.core.twin_tower.TwinTower` -- the wide&deep twin tower
  of Fig. 6: a shared deep trunk (``theta_d``) with factual and
  counterfactual heads (``theta_f``, ``theta_cf``) plus per-head wide
  linear parts.
* :mod:`~repro.core.losses` -- the entire-space CVR losses: the naive
  propensity-debiased loss of Eq. (7) (DCMT_PD), the counterfactual
  loss of Eq. (8), the soft counterfactual regularizer of Eq. (9), and
  the SNIPS self-normalised weights of Eq. (13).
* :class:`~repro.core.dcmt.DCMT` -- the full model (Eq. (14)), with
  ``variant`` switches for the paper's ablations DCMT_PD / DCMT_CF and
  a ``constraint="hard"`` mode reproducing Fig. 8(d).
* :mod:`~repro.core.theory` -- a numerical verification of Theorem
  III.1 (unbiasedness of the DCMT risk).
"""

from repro.core.twin_tower import TwinTower
from repro.core.dcmt import DCMT
from repro.core.losses import (
    counterfactual_regularizer,
    dcmt_cvr_loss,
    entire_space_ipw_loss,
    snips_weights,
)
from repro.core import theory
from repro.core.strategies import STRATEGIES, counterfactual_targets

__all__ = [
    "TwinTower",
    "DCMT",
    "dcmt_cvr_loss",
    "entire_space_ipw_loss",
    "counterfactual_regularizer",
    "snips_weights",
    "theory",
    "STRATEGIES",
    "counterfactual_targets",
]
