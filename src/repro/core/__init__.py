"""The paper's primary contribution: the DCMT framework.

* :class:`~repro.core.twin_tower.TwinTower` -- the wide&deep twin tower
  of Fig. 6: a shared deep trunk (``theta_d``) with factual and
  counterfactual heads (``theta_f``, ``theta_cf``) plus per-head wide
  linear parts.
* :mod:`~repro.core.losses` -- the unified causal objective layer: the
  entire-space CVR losses (Eq. (7)-(9)), the SNIPS self-normalised
  weights of Eq. (13), and the shared IPW/DR primitives
  (``clip_propensity``, ``ipw_weights``, ``ipw_risk``,
  ``doubly_robust_risk``) that the ESCM2/Multi baselines consume too,
  so every Table III model applies one audited set of causal weights.
* :class:`~repro.core.dcmt.DCMT` -- the full model (Eq. (14)), with
  ``variant`` switches for the paper's ablations DCMT_PD / DCMT_CF and
  a ``constraint="hard"`` mode reproducing Fig. 8(d).
* :mod:`~repro.core.theory` -- a numerical verification of Theorem
  III.1 (unbiasedness of the DCMT risk).
"""

from repro.core.twin_tower import TwinTower
from repro.core.dcmt import DCMT
from repro.core.losses import (
    clip_propensity,
    counterfactual_ipw_weights,
    counterfactual_regularizer,
    dcmt_cvr_loss,
    doubly_robust_risk,
    entire_space_ipw_loss,
    imputation_regression_loss,
    ipw_risk,
    ipw_weights,
    snips_weights,
)
from repro.core import theory
from repro.core.strategies import STRATEGIES, counterfactual_targets

__all__ = [
    "TwinTower",
    "DCMT",
    "clip_propensity",
    "dcmt_cvr_loss",
    "entire_space_ipw_loss",
    "counterfactual_regularizer",
    "counterfactual_ipw_weights",
    "doubly_robust_risk",
    "imputation_regression_loss",
    "ipw_risk",
    "ipw_weights",
    "snips_weights",
    "theory",
    "STRATEGIES",
    "counterfactual_targets",
]
