"""Model lifecycle: versioned registry, promotion gates, canary, rollback.

DCMT's entire-space losses are weighted by ``1/o_hat``, so one bad
retrain -- propensity collapse, drift between train and serve, a
corrupted checkpoint -- silently poisons every downstream estimate.
This package makes every model swap in the continual-training loop
safe, observable, and reversible:

* :mod:`~repro.lifecycle.registry` -- content-addressed
  :class:`ModelRegistry`: immutable versions with lineage (parent,
  train-config hash, metrics), atomic temp-file+rename publication, and
  bit-exact load-back verification;
* :mod:`~repro.lifecycle.gate` -- :class:`PromotionGate` shadow-scores
  each candidate against the live champion (AUC/calibration regression
  bounds, propensity-collapse and NaN/range sanity, PSI/KS drift vs the
  champion's frozen reference);
* :mod:`~repro.lifecycle.canary` -- :class:`CanaryRollout` stages a
  gated candidate on a deterministic hash-based slice of traffic with
  per-arm breaker/health/drift isolation and automatic demotion;
* :mod:`~repro.lifecycle.manager` -- :class:`ModelLifecycleManager`
  drives publish -> gate -> canary -> promote, records every decision,
  and exposes ``rollback(version)`` restoring a prior champion whose
  parameters hash-match the registry entry.

The chaos drill in ``tests/lifecycle/test_lifecycle_chaos.py`` pins the
whole machine: a regressing, drifting, or NaN candidate is never
promoted, and a kill at any point during publish/promote leaves the
registry loadable with the prior champion serving.
"""

from repro.lifecycle.canary import (
    CANDIDATE_ARM,
    CHAMPION_ARM,
    DEMOTE,
    PENDING,
    PROMOTE,
    CanaryPolicy,
    CanaryRollout,
    FleetCanaryRollout,
)
from repro.lifecycle.gate import GateCheck, GatePolicy, GateReport, PromotionGate
from repro.lifecycle.manager import LifecycleDecision, ModelLifecycleManager
from repro.lifecycle.registry import (
    CANDIDATE,
    CHAMPION,
    REJECTED,
    RETIRED,
    ModelRegistry,
    ModelVersion,
    RegistryEvent,
    hash_train_config,
    model_digest,
    param_digest,
)

__all__ = [
    "CANDIDATE",
    "CHAMPION",
    "RETIRED",
    "REJECTED",
    "CANDIDATE_ARM",
    "CHAMPION_ARM",
    "PENDING",
    "PROMOTE",
    "DEMOTE",
    "CanaryPolicy",
    "CanaryRollout",
    "FleetCanaryRollout",
    "GateCheck",
    "GatePolicy",
    "GateReport",
    "PromotionGate",
    "LifecycleDecision",
    "ModelLifecycleManager",
    "ModelRegistry",
    "ModelVersion",
    "RegistryEvent",
    "hash_train_config",
    "model_digest",
    "param_digest",
]
