"""Shadow-mode promotion gate: a candidate earns traffic, never assumes it.

Before a retrained model sees a single request, the gate scores it
against the live champion on a policy-free evaluation set and runs four
families of checks:

* **sanity** -- finite parameters and finite, in-range ``[0, 1]``
  predictions (the same contract the serving sanitizer enforces; a
  model that fails it would only ever serve fallbacks);
* **metric regression** -- CVR AUC must not fall more than
  ``max_auc_regression`` below the champion's, and expected calibration
  error must not rise more than ``max_ece_increase`` above it (DCMT's
  ``1/o_hat`` weighting makes calibration rot a first-class failure);
* **propensity floor** -- the candidate's ``o_hat`` distribution must
  not collapse against the clip boundary (IPW variance explosion);
* **shadow drift** -- the candidate's propensity and CVR prediction
  distributions, fed through :class:`~repro.reliability.drift.DriftMonitor`
  against the champion's frozen reference, must not trip.

Every check lands in a :class:`GateReport` with its measured values, so
a refusal is a forensic record, not a boolean.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.data.dataset import InteractionDataset
from repro.metrics.classification import expected_calibration_error
from repro.metrics.ranking import auc
from repro.models.base import MultiTaskModel, Predictions
from repro.reliability.drift import (
    STATUS_TRIP,
    DriftMonitor,
    DriftReference,
    DriftThresholds,
)
from repro.utils.logging import get_logger, log_event

logger = get_logger("lifecycle.gate")


@dataclass(frozen=True)
class GatePolicy:
    """Regression bounds a candidate must clear to reach the canary."""

    #: Candidate CVR AUC may be at most this much below the champion's.
    max_auc_regression: float = 0.01
    #: Candidate ECE may be at most this much above the champion's.
    max_ece_increase: float = 0.02
    #: Fraction of ``o_hat`` predictions allowed at/below this floor.
    propensity_floor: float = 0.02
    max_collapsed_fraction: float = 0.5
    #: Rows scored in shadow (the whole eval set when smaller).
    shadow_sample: int = 4096
    #: Drift thresholds for the shadow comparison.  ``min_samples=1``
    #: because the shadow batch is one deterministic sample, not a
    #: trickle of live traffic.
    drift: DriftThresholds = field(
        default_factory=lambda: DriftThresholds(min_samples=1)
    )

    def __post_init__(self) -> None:
        if self.max_auc_regression < 0:
            raise ValueError(
                f"max_auc_regression must be >= 0, got {self.max_auc_regression}"
            )
        if self.max_ece_increase < 0:
            raise ValueError(
                f"max_ece_increase must be >= 0, got {self.max_ece_increase}"
            )
        if not 0.0 <= self.propensity_floor < 1.0:
            raise ValueError(
                f"propensity_floor must be in [0, 1), got {self.propensity_floor}"
            )
        if not 0.0 < self.max_collapsed_fraction <= 1.0:
            raise ValueError(
                "max_collapsed_fraction must be in (0, 1], got "
                f"{self.max_collapsed_fraction}"
            )
        if self.shadow_sample < 1:
            raise ValueError(
                f"shadow_sample must be >= 1, got {self.shadow_sample}"
            )


@dataclass(frozen=True)
class GateCheck:
    """One named check with its measured evidence."""

    name: str
    passed: bool
    detail: str


@dataclass
class GateReport:
    """Everything the gate measured about one candidate."""

    checks: List[GateCheck] = field(default_factory=list)
    #: Candidate metrics measured during the review (AUC, ECE, ...).
    metrics: dict = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        return all(check.passed for check in self.checks)

    def failures(self) -> List[GateCheck]:
        return [check for check in self.checks if not check.passed]

    def summary(self) -> str:
        if self.passed:
            return f"passed all {len(self.checks)} checks"
        names = ", ".join(c.name for c in self.failures())
        return f"failed: {names}"


class PromotionGate:
    """Runs the shadow review of one candidate against the champion."""

    def __init__(self, policy: Optional[GatePolicy] = None) -> None:
        self.policy = policy or GatePolicy()

    # ------------------------------------------------------------------
    def review(
        self,
        candidate: MultiTaskModel,
        champion: Optional[MultiTaskModel],
        eval_set: InteractionDataset,
        reference: Optional[DriftReference] = None,
        seed: int = 0,
    ) -> GateReport:
        """Shadow-score ``candidate`` and return the full check report.

        ``champion=None`` (bootstrap: nothing is serving yet) skips the
        comparative checks; the sanity and propensity checks still run,
        so even the first model cannot reach traffic emitting NaNs.
        ``reference`` is the champion's frozen training-time
        distribution snapshot; without one the drift check is skipped
        and recorded as such.
        """
        if len(eval_set) == 0:
            raise ValueError("cannot gate a candidate on an empty eval set")
        report = GateReport()
        policy = self.policy

        check = self._check_finite_parameters(candidate)
        report.checks.append(check)
        if not check.passed:
            # Forward passes on NaN weights only smear NaNs further;
            # stop here with the one check that already failed.
            log_event(logger, "gate_review", passed=False, detail=check.detail)
            return report

        subset = self._shadow_subset(eval_set, seed)
        preds = candidate.predict(subset.full_batch())
        report.checks.append(self._check_prediction_sanity(preds))
        report.checks.append(self._check_propensity_mass(preds))

        if report.passed:  # comparative checks need usable predictions
            cvr_auc = auc(subset.conversions, preds.cvr)
            cvr_ece = expected_calibration_error(subset.conversions, preds.cvr)
            report.metrics["cvr_auc"] = cvr_auc
            report.metrics["cvr_ece"] = cvr_ece
            if champion is not None:
                champ_preds = champion.predict(subset.full_batch())
                champ_auc = auc(subset.conversions, champ_preds.cvr)
                champ_ece = expected_calibration_error(
                    subset.conversions, champ_preds.cvr
                )
                report.metrics["champion_cvr_auc"] = champ_auc
                report.metrics["champion_cvr_ece"] = champ_ece
                report.checks.append(
                    GateCheck(
                        "auc_regression",
                        cvr_auc >= champ_auc - policy.max_auc_regression,
                        f"candidate {cvr_auc:.4f} vs champion {champ_auc:.4f} "
                        f"(bound -{policy.max_auc_regression})",
                    )
                )
                report.checks.append(
                    GateCheck(
                        "calibration_regression",
                        cvr_ece <= champ_ece + policy.max_ece_increase,
                        f"candidate ECE {cvr_ece:.4f} vs champion "
                        f"{champ_ece:.4f} (bound +{policy.max_ece_increase})",
                    )
                )
            report.checks.append(self._check_shadow_drift(preds, reference))

        log_event(
            logger,
            "gate_review",
            passed=report.passed,
            detail=report.summary(),
            **{k: round(v, 5) for k, v in report.metrics.items()},
        )
        return report

    # -- individual checks ---------------------------------------------
    def _shadow_subset(
        self, eval_set: InteractionDataset, seed: int
    ) -> InteractionDataset:
        n = len(eval_set)
        if n <= self.policy.shadow_sample:
            return eval_set
        rng = np.random.default_rng(seed)
        idx = np.sort(rng.choice(n, size=self.policy.shadow_sample, replace=False))
        return eval_set.subset(idx)

    @staticmethod
    def _check_finite_parameters(candidate: MultiTaskModel) -> GateCheck:
        bad = sum(
            int(not np.all(np.isfinite(p.data))) for p in candidate.parameters()
        )
        return GateCheck(
            "finite_parameters",
            bad == 0,
            "all parameters finite"
            if bad == 0
            else f"{bad} parameter tensor(s) contain NaN/inf",
        )

    @staticmethod
    def _check_prediction_sanity(preds: Predictions) -> GateCheck:
        problems = []
        for name, values in (("o_hat", preds.ctr), ("cvr", preds.cvr)):
            values = np.asarray(values)
            if not np.all(np.isfinite(values)):
                problems.append(f"{name}: non-finite predictions")
            elif np.any(values < 0.0) or np.any(values > 1.0):
                problems.append(f"{name}: predictions outside [0, 1]")
        return GateCheck(
            "prediction_sanity",
            not problems,
            "; ".join(problems) or "predictions finite and in [0, 1]",
        )

    def _check_propensity_mass(self, preds: Predictions) -> GateCheck:
        floor = self.policy.propensity_floor
        collapsed = float(np.mean(np.asarray(preds.ctr) <= floor))
        return GateCheck(
            "propensity_floor",
            collapsed <= self.policy.max_collapsed_fraction,
            f"{collapsed:.1%} of o_hat at or below {floor} "
            f"(bound {self.policy.max_collapsed_fraction:.0%})",
        )

    def _check_shadow_drift(
        self, preds: Predictions, reference: Optional[DriftReference]
    ) -> GateCheck:
        if reference is None:
            return GateCheck(
                "shadow_drift", True, "skipped: no champion drift reference"
            )
        tripped = []
        for name, ref, values in (
            ("propensity", reference.propensity, preds.ctr),
            ("cvr", reference.cvr, preds.cvr),
        ):
            monitor = DriftMonitor(
                ref, self.policy.drift, window=max(len(np.asarray(values)), 1)
            )
            monitor.observe(values)
            snap = monitor.snapshot()
            if snap["status"] == STATUS_TRIP:
                tripped.append(
                    f"{name} (psi={snap['psi']:.3f}, ks={snap['ks']:.3f})"
                )
        return GateCheck(
            "shadow_drift",
            not tripped,
            "tripped: " + ", ".join(tripped)
            if tripped
            else "shadow distributions within reference",
        )
