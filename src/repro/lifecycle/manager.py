"""The lifecycle manager: publish -> gate -> canary -> promote/rollback.

:class:`ModelLifecycleManager` is the one object the continual-training
loop talks to.  It owns the state machine spanning the other modules:

1. ``submit`` publishes a freshly trained model into the
   :class:`~repro.lifecycle.registry.ModelRegistry` (content-addressed,
   load-back verified) and runs the
   :class:`~repro.lifecycle.gate.PromotionGate` shadow review against
   the serving champion.  Failures are recorded as rejections; the
   first-ever model bootstraps straight to champion after the
   non-comparative checks.
2. ``build_canary`` stages a gated candidate behind a
   :class:`~repro.lifecycle.canary.CanaryRollout` -- two isolated
   serving arms, deterministic hash split.
3. ``conclude_canary`` reads the rollout verdict and performs the
   registry transition: promote (prior champion retired, recoverable)
   or reject, with the reason on the audit trail.
4. ``rollback`` restores a prior champion bit-exactly at any time.

Every decision lands in ``self.decisions`` in order, so a whole
continual-training run has a deterministic, assertable transcript.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.data.dataset import InteractionDataset
from repro.lifecycle.canary import (
    DEMOTE,
    PROMOTE,
    CanaryPolicy,
    CanaryRollout,
    FleetCanaryRollout,
)
from repro.lifecycle.gate import GatePolicy, GateReport, PromotionGate
from repro.lifecycle.registry import ModelRegistry, ModelVersion
from repro.models.base import MultiTaskModel
from repro.reliability.drift import DriftReference, DriftSentinel, DriftThresholds
from repro.simulation.serving import RankingService
from repro.utils.logging import get_logger, log_event

logger = get_logger("lifecycle.manager")


@dataclass(frozen=True)
class LifecycleDecision:
    """One recorded lifecycle action (the audit transcript entry)."""

    version: str
    action: str  # bootstrap/reject/stage/promote/demote/rollback/adopt
    reason: str = ""
    gate: Optional[GateReport] = None

    @property
    def promoted(self) -> bool:
        return self.action in ("bootstrap", "promote", "rollback", "adopt")


@dataclass
class _StagedCandidate:
    version: str
    model: MultiTaskModel
    reference: Optional[DriftReference]


class ModelLifecycleManager:
    """Drives every model swap through gate and canary, reversibly."""

    def __init__(
        self,
        registry: ModelRegistry,
        model_factory: Callable[[], MultiTaskModel],
        gate: Optional[PromotionGate] = None,
        canary_policy: Optional[CanaryPolicy] = None,
        canary_drift_thresholds: Optional[DriftThresholds] = None,
    ) -> None:
        self.registry = registry
        self.model_factory = model_factory
        self.gate = gate or PromotionGate(GatePolicy())
        self.canary_policy = canary_policy or CanaryPolicy()
        #: Thresholds for the candidate arm's drift sentinel.  A
        #: candidate retrained on *fresher* data than the champion
        #: legitimately predicts differently from the champion's frozen
        #: reference -- deployments that retrain on drifted traffic
        #: loosen this so adaptation itself does not read as a fault.
        self.canary_drift_thresholds = canary_drift_thresholds
        self.decisions: List[LifecycleDecision] = []
        self._staged: Optional[_StagedCandidate] = None
        #: In-memory drift references per version (champion's reference
        #: feeds the gate's shadow check and the canary sentinel).
        self._references: Dict[str, DriftReference] = {}
        #: Cache of the loaded champion (invalidated on every swap).
        self._champion_cache: Optional[MultiTaskModel] = None
        self._champion_cache_version: Optional[str] = None

    # -- champion access -----------------------------------------------
    @property
    def champion(self) -> Optional[ModelVersion]:
        return self.registry.champion

    def champion_model(self) -> Optional[MultiTaskModel]:
        """The serving champion, loaded (and digest-verified) once."""
        champion = self.registry.champion
        if champion is None:
            return None
        if self._champion_cache_version != champion.version:
            self._champion_cache = self.registry.load_model(
                champion.version, self.model_factory
            )
            self._champion_cache_version = champion.version
        return self._champion_cache

    def champion_reference(self) -> Optional[DriftReference]:
        champion = self.registry.champion
        if champion is None:
            return None
        reference = self._references.get(champion.version)
        if reference is None and champion.drift_reference_path is not None:
            reference = DriftReference.load(champion.drift_reference_path)
            self._references[champion.version] = reference
        return reference

    def _invalidate_champion_cache(self) -> None:
        self._champion_cache = None
        self._champion_cache_version = None

    def _decide(
        self,
        version: str,
        action: str,
        reason: str = "",
        gate: Optional[GateReport] = None,
    ) -> LifecycleDecision:
        decision = LifecycleDecision(
            version=version, action=action, reason=reason, gate=gate
        )
        self.decisions.append(decision)
        log_event(
            logger,
            "lifecycle_decision",
            version=version,
            action=action,
            reason=reason,
        )
        return decision

    # -- submission -----------------------------------------------------
    def submit(
        self,
        model: MultiTaskModel,
        eval_set: InteractionDataset,
        *,
        train_config=None,
        metrics: Optional[Dict[str, float]] = None,
        reference: Optional[DriftReference] = None,
        note: str = "",
    ) -> LifecycleDecision:
        """Publish a retrained model and run the promotion gate.

        Outcomes: ``bootstrap`` (no champion existed; candidate passed
        the sanity checks and is champion now), ``reject`` (gate
        failure, recorded in the registry), or ``stage`` (gate passed;
        call :meth:`build_canary` to put it on real traffic).
        """
        entry = self.registry.publish(
            model,
            train_config=train_config,
            metrics=metrics,
            note=note,
        )
        if reference is not None:
            self._references[entry.version] = reference
        champion_model = self.champion_model()
        report = self.gate.review(
            model,
            champion_model,
            eval_set,
            reference=self.champion_reference(),
        )
        if not report.passed:
            self.registry.reject(entry.version, report.summary())
            return self._decide(entry.version, "reject", report.summary(), report)
        if champion_model is None:
            self.registry.promote(entry.version, "bootstrap: no champion")
            self._invalidate_champion_cache()
            return self._decide(
                entry.version, "bootstrap", report.summary(), report
            )
        self._staged = _StagedCandidate(
            version=entry.version, model=model, reference=reference
        )
        return self._decide(entry.version, "stage", report.summary(), report)

    def adopt(
        self,
        model: MultiTaskModel,
        *,
        train_config=None,
        reference: Optional[DriftReference] = None,
        note: str = "",
        reason: str = "adopted without gate review",
    ) -> LifecycleDecision:
        """Publish and promote unconditionally (registry surgery).

        The gate/canary pipeline exists to stop *behavioural* changes
        from taking traffic unreviewed.  Some swaps are not behavioural:
        growing an embedding vocabulary after catalog churn appends
        zero rows to the champion's own parameters -- every existing id
        scores bit-identically, the new ids *must* be servable now, and
        holding the grown copy behind a canary would leave the serving
        fleet unable to score the new catalog in the meantime.  This
        records the swap on the audit trail as an ``adopt`` decision so
        the transcript still shows exactly when and why the champion's
        blob changed.
        """
        entry = self.registry.publish(
            model, train_config=train_config, note=note
        )
        if reference is not None:
            self._references[entry.version] = reference
        self.registry.promote(entry.version, reason)
        self._invalidate_champion_cache()
        self._staged = None
        return self._decide(entry.version, "adopt", reason)

    @property
    def staged_version(self) -> Optional[str]:
        return None if self._staged is None else self._staged.version

    # -- canary ---------------------------------------------------------
    def build_canary(self, scenario, fleet=None, **service_kwargs) -> CanaryRollout:
        """Stage the gated candidate behind a two-arm canary rollout.

        Both arms get their own breaker/queue/health; the candidate arm
        additionally gets a :class:`DriftSentinel` frozen on the
        *champion's* training reference, so "predicts differently than
        what the system was calibrated on" demotes just like a crash
        would.  Extra ``service_kwargs`` (page_size, policy, clock, ...)
        apply to both arms.

        With ``fleet=`` (a :class:`~repro.simulation.fleet.ServingFleet`
        serving the current champion), the candidate is instead attached
        to the fleet as a real replica and a
        :class:`~repro.lifecycle.canary.FleetCanaryRollout` is returned:
        the champion arm is the fleet's replica pool, and the canary
        slice rides the same routing/hedging path as champion traffic.
        """
        if self._staged is None:
            raise RuntimeError(
                "no staged candidate: submit() must pass the gate first"
            )
        champion_model = self.champion_model()
        if champion_model is None:
            raise RuntimeError("cannot canary without a serving champion")
        reference = self.champion_reference()
        sentinel = (
            None
            if reference is None
            else DriftSentinel(reference, thresholds=self.canary_drift_thresholds)
        )
        if fleet is not None:
            champion_version = self.registry.champion.version
            if fleet.version is not None and fleet.version != champion_version:
                raise RuntimeError(
                    f"fleet serves {fleet.version!r} but the champion is "
                    f"{champion_version!r}; rebuild the fleet from the "
                    "registry before attaching a canary"
                )
            candidate_arm = RankingService(
                self._staged.model, scenario, sentinel=sentinel, **service_kwargs
            )
            fleet.attach_canary(
                candidate_arm,
                self._staged.version,
                traffic_fraction=self.canary_policy.traffic_fraction,
                salt=self.canary_policy.salt,
            )
            return FleetCanaryRollout(
                fleet,
                candidate_arm,
                candidate_version=self._staged.version,
                policy=self.canary_policy,
            )
        champion_arm = RankingService(champion_model, scenario, **service_kwargs)
        candidate_arm = RankingService(
            self._staged.model, scenario, sentinel=sentinel, **service_kwargs
        )
        return CanaryRollout(
            champion_arm,
            candidate_arm,
            candidate_version=self._staged.version,
            policy=self.canary_policy,
        )

    def conclude_canary(self, rollout: CanaryRollout) -> LifecycleDecision:
        """Apply the rollout verdict to the registry."""
        if (
            self._staged is None
            or rollout.candidate_version != self._staged.version
        ):
            raise RuntimeError(
                f"rollout for {rollout.candidate_version!r} does not match "
                f"the staged candidate {self.staged_version!r}"
            )
        verdict, reason = rollout.conclude()
        staged = self._staged
        self._staged = None
        if verdict == PROMOTE:
            self.registry.promote(staged.version, reason)
            self._invalidate_champion_cache()
            return self._decide(staged.version, "promote", reason)
        assert verdict == DEMOTE
        self.registry.reject(staged.version, reason)
        return self._decide(staged.version, "demote", reason)

    # -- rollback -------------------------------------------------------
    def rollback(
        self, version: Optional[str] = None, reason: str = "operator rollback"
    ) -> LifecycleDecision:
        """Restore a prior champion bit-exactly (default: the previous)."""
        entry = self.registry.rollback(version, reason)
        self._invalidate_champion_cache()
        self._staged = None
        return self._decide(entry.version, "rollback", reason)
