"""Canary rollout: a gated candidate earns full traffic arm by arm.

A :class:`CanaryRollout` fronts two fully independent
:class:`~repro.simulation.serving.RankingService` arms -- the serving
champion and the gated candidate -- and routes each user to exactly one
of them with the deterministic stable hash of
:mod:`repro.utils.hashing`:

* the split is a property of the user id and the salt, so a user never
  flaps between arms mid-experiment and a rerun reproduces the exact
  assignment;
* each arm keeps its own circuit breaker, drift sentinel, admission
  queue, and :class:`~repro.reliability.health.HealthMonitor`, so a
  sick candidate degrades (and sheds) only its own slice of traffic;
* :meth:`CanaryRollout.verdict` folds the candidate arm's signals into
  ``promote`` / ``demote`` / ``pending``: any breaker trip, drift-
  sentinel trip, non-HEALTHY health state, or excess degraded traffic
  demotes immediately, and only ``min_requests`` of clean serving
  promote.

The rollout itself never touches the registry; the
:class:`~repro.lifecycle.manager.ModelLifecycleManager` reads the
verdict and performs the (atomic, reversible) registry transition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.reliability.health import HEALTHY
from repro.simulation.serving import RankingService
from repro.utils.hashing import stable_fraction
from repro.utils.logging import get_logger, log_event

logger = get_logger("lifecycle.canary")

CHAMPION_ARM = "champion"
CANDIDATE_ARM = "candidate"

PENDING = "pending"
PROMOTE = "promote"
DEMOTE = "demote"


@dataclass(frozen=True)
class CanaryPolicy:
    """How much traffic the candidate gets and what demotes it."""

    #: Share of users hashed onto the candidate arm.
    traffic_fraction: float = 0.1
    #: Candidate-arm requests required before a promote verdict.
    min_requests: int = 50
    #: Demote when more than this fraction of candidate-arm requests
    #: was served by a fallback path instead of the candidate itself.
    max_degraded_fraction: float = 0.1
    #: Breaker openings tolerated on the candidate arm (0: any trip
    #: demotes).
    max_breaker_trips: int = 0
    #: Salt for the stable user hash (vary to re-randomise the split).
    salt: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.traffic_fraction < 1.0:
            raise ValueError(
                f"traffic_fraction must be in (0, 1), got {self.traffic_fraction}"
            )
        if self.min_requests < 1:
            raise ValueError(
                f"min_requests must be >= 1, got {self.min_requests}"
            )
        if not 0.0 <= self.max_degraded_fraction <= 1.0:
            raise ValueError(
                "max_degraded_fraction must be in [0, 1], got "
                f"{self.max_degraded_fraction}"
            )
        if self.max_breaker_trips < 0:
            raise ValueError(
                f"max_breaker_trips must be >= 0, got {self.max_breaker_trips}"
            )


class CanaryRollout:
    """Routes traffic across the champion and candidate arms."""

    def __init__(
        self,
        champion: RankingService,
        candidate: RankingService,
        candidate_version: str,
        policy: Optional[CanaryPolicy] = None,
    ) -> None:
        self.arms: Dict[str, RankingService] = {
            CHAMPION_ARM: champion,
            CANDIDATE_ARM: candidate,
        }
        self.candidate_version = candidate_version
        self.policy = policy or CanaryPolicy()
        self.requests: Dict[str, int] = {CHAMPION_ARM: 0, CANDIDATE_ARM: 0}
        self.shed: Dict[str, int] = {CHAMPION_ARM: 0, CANDIDATE_ARM: 0}
        self._concluded: Optional[str] = None
        self._reason = ""

    # ------------------------------------------------------------------
    def route(self, user: int) -> str:
        """Deterministic arm for one user (stable across runs)."""
        if self._concluded == DEMOTE:
            return CHAMPION_ARM
        if (
            stable_fraction(user, self.policy.salt)
            < self.policy.traffic_fraction
        ):
            return CANDIDATE_ARM
        return CHAMPION_ARM

    def serve_page(
        self,
        user: int,
        candidates: np.ndarray,
        rng: np.random.Generator,
        deadline_s: Optional[float] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Serve through the user's arm; interface-compatible with
        :meth:`RankingService.serve_page` (including
        :class:`~repro.reliability.errors.RequestShedError`)."""
        arm = self.route(user)
        self.requests[arm] += 1
        try:
            return self.arms[arm].serve_page(
                user, candidates, rng, deadline_s=deadline_s
            )
        except Exception:
            self.shed[arm] += 1
            raise

    # ------------------------------------------------------------------
    def arm_health(self) -> Dict[str, Dict]:
        """Per-arm structured health (the canary dashboard)."""
        report = {}
        for name, service in self.arms.items():
            snap = service.health_snapshot()
            snap["routed_requests"] = self.requests[name]
            snap["routed_failures"] = self.shed[name]
            report[name] = snap
        return report

    def verdict(self) -> Tuple[str, str]:
        """``(promote|demote|pending, reason)`` from candidate signals."""
        if self._concluded is not None:
            return self._concluded, self._reason
        policy = self.policy
        candidate = self.arms[CANDIDATE_ARM]
        breaker_trips = candidate.breaker.times_opened
        if breaker_trips > policy.max_breaker_trips:
            return DEMOTE, (
                f"candidate breaker opened {breaker_trips}x "
                f"(allowed {policy.max_breaker_trips})"
            )
        if candidate.sentinel is not None and candidate.sentinel.tripped:
            tripped = [
                name
                for name, status in candidate.sentinel.statuses().items()
                if status == "trip"
            ]
            return DEMOTE, f"candidate drift sentinel tripped: {', '.join(tripped)}"
        health = candidate.health.state
        if health != HEALTHY:
            return DEMOTE, (
                f"candidate health {health}: "
                f"{candidate.health.snapshot()['last_reason']}"
            )
        stats = candidate.stats
        if (
            stats.requests > 0
            and stats.degraded_fraction > policy.max_degraded_fraction
        ):
            return DEMOTE, (
                f"candidate served {stats.degraded_fraction:.1%} of traffic "
                f"from fallbacks (allowed {policy.max_degraded_fraction:.0%})"
            )
        if self.requests[CANDIDATE_ARM] >= policy.min_requests:
            return PROMOTE, (
                f"clean after {self.requests[CANDIDATE_ARM]} candidate requests"
            )
        return PENDING, (
            f"{self.requests[CANDIDATE_ARM]}/{policy.min_requests} "
            "candidate requests observed"
        )

    def conclude(self) -> Tuple[str, str]:
        """Freeze the verdict; a demoted canary routes everything to the
        champion from here on (an undecided canary demotes -- never
        promote on insufficient evidence)."""
        if self._concluded is None:
            verdict, reason = self.verdict()
            if verdict == PENDING:
                verdict = DEMOTE
                reason = f"insufficient canary evidence ({reason})"
            self._concluded = verdict
            self._reason = reason
            log_event(
                logger,
                "canary_concluded",
                version=self.candidate_version,
                verdict=verdict,
                reason=reason,
            )
        return self._concluded, self._reason


class FleetCanaryRollout(CanaryRollout):
    """A canary whose candidate is a real replica of a serving fleet.

    Instead of hash-splitting between two standalone services, the
    candidate is attached to a
    :class:`~repro.simulation.fleet.ServingFleet` via
    :meth:`~repro.simulation.fleet.ServingFleet.attach_canary` and the
    champion arm is the fleet's replica pool itself.  Every request --
    champion or canary slice -- goes through :meth:`fleet.serve_page`,
    so the canary exercises the exact production path: fleet admission
    and degradation, power-of-two routing, hedged retries, and the
    deterministic transcript.  A refusing canary replica hedges onto
    champion replicas rather than shedding its users, and its breaker /
    sentinel / health signals still drive :meth:`verdict` unchanged.

    :meth:`conclude` freezes the verdict and detaches the canary from
    the fleet, returning the whole slice to the champion pool.
    """

    def __init__(
        self,
        fleet,
        candidate: RankingService,
        candidate_version: str,
        policy: Optional[CanaryPolicy] = None,
    ) -> None:
        if fleet.canary is None or fleet.canary.service is not candidate:
            raise ValueError(
                "candidate must already be attached to the fleet "
                "(ServingFleet.attach_canary)"
            )
        super().__init__(fleet, candidate, candidate_version, policy=policy)
        self.fleet = fleet

    def route(self, user: int) -> str:
        """Mirror the fleet's own canary hash split (stable per user)."""
        if self._concluded == DEMOTE:
            return CHAMPION_ARM
        if self.fleet.routes_to_canary(user):
            return CANDIDATE_ARM
        return CHAMPION_ARM

    def serve_page(
        self,
        user: int,
        candidates: np.ndarray,
        rng: np.random.Generator,
        deadline_s: Optional[float] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Serve through the fleet; both arms share its routing path."""
        arm = self.route(user)
        self.requests[arm] += 1
        try:
            return self.fleet.serve_page(
                user, candidates, rng, deadline_s=deadline_s
            )
        except Exception:
            self.shed[arm] += 1
            raise

    def conclude(self) -> Tuple[str, str]:
        verdict, reason = super().conclude()
        self.fleet.detach_canary()
        return verdict, reason
