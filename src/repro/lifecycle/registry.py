"""Content-addressed, versioned model registry.

Every model that might ever serve traffic lives here as an immutable
version: a parameter blob stored under its own SHA-256 digest plus a
manifest entry carrying lineage (parent version, train-config hash),
evaluation metrics, an optional drift-reference path, and a status in
the promotion state machine::

    candidate --promote--> champion --retire--> retired
        |                     ^                    |
        +----reject           +------rollback------+

Durability invariants, all enforced here and drilled in
``tests/lifecycle/test_lifecycle_chaos.py``:

* **Atomic publication** -- the parameter blob and the manifest are
  both written temp-file + fsync + rename, so a kill at any instant
  leaves either the old registry state or the new one, never a torn
  manifest or a half-written blob under a live name.
* **Bit-exact load-back verification** -- ``publish`` re-reads the blob
  it just wrote and re-hashes it; a blob that does not round-trip to
  the in-memory digest never becomes a version.  ``load_model`` and
  ``promote`` re-verify the digest again, so bit rot between publish
  and promote is caught before it serves.
* **Reversibility** -- champions are never deleted on promotion, so
  ``rollback`` can restore any prior champion and prove, by digest,
  that the restored parameters are the ones originally published.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import zipfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional

import numpy as np

from repro.models.base import MultiTaskModel
from repro.nn.serialization import load_checkpoint, save_checkpoint
from repro.reliability.checkpoint import fsync_directory
from repro.reliability.errors import PromotionBlockedError, RegistryCorruptError
from repro.utils.logging import get_logger, log_event

logger = get_logger("lifecycle.registry")

MANIFEST_NAME = "registry.json"
MANIFEST_VERSION = 1
_BLOB_META_KEY = "__metadata__"

#: Version statuses (the promotion state machine).
CANDIDATE = "candidate"
CHAMPION = "champion"
RETIRED = "retired"
REJECTED = "rejected"


def param_digest(state: Mapping[str, np.ndarray]) -> str:
    """Canonical SHA-256 over a parameter state dict.

    Hashes name, dtype, shape, and raw bytes of every array in sorted
    name order, so two models agree on the digest iff their parameters
    are bit-identical.
    """
    hasher = hashlib.sha256()
    for name in sorted(state):
        arr = np.ascontiguousarray(np.asarray(state[name]))
        hasher.update(name.encode("utf-8"))
        hasher.update(str(arr.dtype).encode("ascii"))
        hasher.update(str(arr.shape).encode("ascii"))
        hasher.update(arr.tobytes())
    return hasher.hexdigest()


def model_digest(model: MultiTaskModel) -> str:
    """:func:`param_digest` of a model's current parameters."""
    return param_digest(model.state_dict())


def hash_train_config(config: Any) -> str:
    """Short, stable hash of a (frozen dataclass) training config."""
    if config is None:
        return ""
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        payload = dataclasses.asdict(config)
    elif isinstance(config, Mapping):
        payload = dict(config)
    else:
        payload = {"repr": repr(config)}
    blob = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class ModelVersion:
    """One immutable registry entry."""

    version: str
    params_digest: str
    model_name: str
    status: str
    sequence: int
    parent: Optional[str] = None
    train_config_hash: str = ""
    metrics: Dict[str, float] = field(default_factory=dict)
    drift_reference_path: Optional[str] = None
    note: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ModelVersion":
        return cls(**payload)

    def with_status(self, status: str) -> "ModelVersion":
        return dataclasses.replace(self, status=status)


@dataclass(frozen=True)
class RegistryEvent:
    """One line of the registry's append-only audit trail."""

    sequence: int
    action: str
    version: str
    reason: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


class ModelRegistry:
    """Versioned model store with atomic publication and rollback.

    Layout under ``directory``::

        registry.json            # manifest: versions, champion, events
        blobs/<digest16>.npz     # content-addressed parameter blobs

    The manifest is the single source of truth: a blob that no manifest
    entry references (a kill between blob write and manifest write) is
    an orphan, invisible to every read path and swept by :meth:`fsck`.
    """

    def __init__(self, directory: "Path | str") -> None:
        self.directory = Path(directory)
        self.blob_dir = self.directory / "blobs"
        self.blob_dir.mkdir(parents=True, exist_ok=True)
        self._manifest = self._load_manifest()

    # -- manifest persistence ------------------------------------------
    @property
    def manifest_path(self) -> Path:
        return self.directory / MANIFEST_NAME

    def _empty_manifest(self) -> Dict[str, Any]:
        return {
            "manifest_version": MANIFEST_VERSION,
            "sequence": 0,
            "champion": None,
            "versions": {},
            "events": [],
        }

    def _load_manifest(self) -> Dict[str, Any]:
        if not self.manifest_path.exists():
            return self._empty_manifest()
        try:
            manifest = json.loads(self.manifest_path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise RegistryCorruptError(
                f"unreadable registry manifest {self.manifest_path}: {exc}"
            ) from exc
        if manifest.get("manifest_version", 0) > MANIFEST_VERSION:
            raise RegistryCorruptError(
                f"manifest version {manifest['manifest_version']} is newer "
                f"than this library supports ({MANIFEST_VERSION})"
            )
        return manifest

    def _write_manifest(self) -> None:
        """Atomic manifest publication: temp file, fsync, rename."""
        tmp = self.manifest_path.with_name(self.manifest_path.name + ".tmp")
        data = json.dumps(self._manifest, indent=2, sort_keys=True)
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.manifest_path)
        fsync_directory(self.directory)

    def _record(self, action: str, version: str, reason: str = "") -> None:
        self._manifest["events"].append(
            RegistryEvent(
                sequence=len(self._manifest["events"]) + 1,
                action=action,
                version=version,
                reason=reason,
            ).to_dict()
        )

    # -- read side ------------------------------------------------------
    def versions(self) -> List[ModelVersion]:
        """All entries, oldest first."""
        entries = [
            ModelVersion.from_dict(v) for v in self._manifest["versions"].values()
        ]
        return sorted(entries, key=lambda v: v.sequence)

    def get(self, version: str) -> ModelVersion:
        try:
            return ModelVersion.from_dict(self._manifest["versions"][version])
        except KeyError:
            raise KeyError(
                f"unknown version {version!r}; registry has "
                f"{sorted(self._manifest['versions'])}"
            ) from None

    @property
    def champion(self) -> Optional[ModelVersion]:
        name = self._manifest["champion"]
        return None if name is None else self.get(name)

    def events(self) -> List[RegistryEvent]:
        return [RegistryEvent(**e) for e in self._manifest["events"]]

    def lineage(self, version: str) -> List[ModelVersion]:
        """The version and its ancestors, newest first."""
        chain: List[ModelVersion] = []
        cursor: Optional[str] = version
        while cursor is not None:
            entry = self.get(cursor)
            chain.append(entry)
            cursor = entry.parent
        return chain

    # -- blob I/O -------------------------------------------------------
    def blob_path(self, digest: str) -> Path:
        return self.blob_dir / f"{digest[:16]}.npz"

    def _read_blob_state(self, digest: str) -> Dict[str, np.ndarray]:
        path = self.blob_path(digest)
        try:
            with np.load(path) as archive:
                state = {
                    key: archive[key]
                    for key in archive.files
                    if key != _BLOB_META_KEY
                }
        except (OSError, ValueError, KeyError, zipfile.BadZipFile) as exc:
            raise RegistryCorruptError(
                f"unreadable parameter blob {path.name}: {exc}"
            ) from exc
        actual = param_digest(state)
        if actual != digest:
            raise RegistryCorruptError(
                f"parameter blob {path.name} failed verification: "
                f"expected digest {digest}, actual {actual}"
            )
        return state

    def verify(self, version: str) -> ModelVersion:
        """Re-hash a version's blob against its manifest entry."""
        entry = self.get(version)
        self._read_blob_state(entry.params_digest)
        return entry

    # -- write side -----------------------------------------------------
    def publish(
        self,
        model: MultiTaskModel,
        *,
        parent: Optional[str] = None,
        train_config: Any = None,
        metrics: Optional[Dict[str, float]] = None,
        drift_reference_path: "Path | str | None" = None,
        note: str = "",
    ) -> ModelVersion:
        """Store a candidate version; verify the blob bit-exactly.

        Order of operations is the crash-safety story: blob first
        (atomic), load-back verification second, manifest last (atomic).
        A kill anywhere before the manifest rename leaves at worst an
        orphaned blob -- the registry's visible state is unchanged and
        the prior champion keeps serving.
        """
        if parent is None and self._manifest["champion"] is not None:
            parent = self._manifest["champion"]
        if parent is not None:
            self.get(parent)  # must exist; raises KeyError otherwise
        digest = model_digest(model)
        sequence = self._manifest["sequence"] + 1
        version = f"v{sequence:04d}"
        entry = ModelVersion(
            version=version,
            params_digest=digest,
            model_name=getattr(model, "model_name", type(model).__name__),
            status=CANDIDATE,
            sequence=sequence,
            parent=parent,
            train_config_hash=hash_train_config(train_config),
            metrics=dict(metrics or {}),
            drift_reference_path=(
                None if drift_reference_path is None else str(drift_reference_path)
            ),
            note=note,
        )
        blob = self.blob_path(digest)
        if not blob.exists():
            save_checkpoint(
                model, blob, metadata={"params_digest": digest, "version": version}
            )
        # Load-back verification: the bytes on disk must reproduce the
        # in-memory digest before the version becomes visible.
        self._read_blob_state(digest)
        self._manifest["sequence"] = sequence
        self._manifest["versions"][version] = entry.to_dict()
        self._record("publish", version, note)
        self._write_manifest()
        log_event(
            logger,
            "version_published",
            version=version,
            digest=digest[:16],
            parent=parent or "<root>",
            model=entry.model_name,
        )
        return entry

    def promote(self, version: str, reason: str = "") -> ModelVersion:
        """Make ``version`` the champion (prior champion is retired).

        Refuses rejected versions and any blob that fails bit-exact
        re-verification -- a corrupt candidate can never take traffic.
        """
        entry = self.get(version)
        if entry.status == REJECTED:
            raise PromotionBlockedError(
                f"{version} was rejected ({entry.note or 'no reason recorded'}); "
                "publish a new candidate instead of promoting it"
            )
        try:
            self._read_blob_state(entry.params_digest)
        except RegistryCorruptError as exc:
            raise PromotionBlockedError(
                f"refusing to promote {version}: {exc}"
            ) from exc
        previous = self._manifest["champion"]
        if previous is not None and previous != version:
            prior = self.get(previous)
            self._manifest["versions"][previous] = prior.with_status(
                RETIRED
            ).to_dict()
        self._manifest["versions"][version] = entry.with_status(CHAMPION).to_dict()
        self._manifest["champion"] = version
        self._record("promote", version, reason)
        self._write_manifest()
        log_event(
            logger,
            "version_promoted",
            version=version,
            previous=previous or "<none>",
            reason=reason,
        )
        return self.get(version)

    def reject(self, version: str, reason: str) -> ModelVersion:
        """Mark a candidate as rejected (gate failure, canary demotion)."""
        entry = self.get(version)
        if entry.status == CHAMPION:
            raise PromotionBlockedError(
                f"cannot reject the serving champion {version}; "
                "rollback to a prior version first"
            )
        updated = dataclasses.replace(entry, status=REJECTED, note=reason)
        self._manifest["versions"][version] = updated.to_dict()
        self._record("reject", version, reason)
        self._write_manifest()
        log_event(logger, "version_rejected", version=version, reason=reason)
        return updated

    def rollback(self, version: Optional[str] = None, reason: str = "") -> ModelVersion:
        """Restore a prior champion (default: the most recent one).

        The target's blob is re-verified against its recorded digest, so
        the restored champion is bit-exactly the one that served before.
        """
        if version is None:
            version = self._previous_champion()
            if version is None:
                raise PromotionBlockedError(
                    "rollback: no prior champion recorded in the registry"
                )
        entry = self.get(version)
        if entry.status == REJECTED:
            raise PromotionBlockedError(
                f"rollback target {version} was rejected; pick another version"
            )
        try:
            self._read_blob_state(entry.params_digest)
        except RegistryCorruptError as exc:
            raise PromotionBlockedError(
                f"refusing to rollback to {version}: {exc}"
            ) from exc
        current = self._manifest["champion"]
        if current is not None and current != version:
            prior = self.get(current)
            self._manifest["versions"][current] = prior.with_status(
                RETIRED
            ).to_dict()
        self._manifest["versions"][version] = entry.with_status(CHAMPION).to_dict()
        self._manifest["champion"] = version
        self._record("rollback", version, reason)
        self._write_manifest()
        log_event(
            logger,
            "rollback",
            version=version,
            displaced=current or "<none>",
            reason=reason,
        )
        return self.get(version)

    def _previous_champion(self) -> Optional[str]:
        """Most recent distinct champion before the current one."""
        current = self._manifest["champion"]
        for event in reversed(self._manifest["events"]):
            if event["action"] in ("promote", "rollback"):
                if event["version"] != current:
                    return event["version"]
        return None

    # -- model materialisation -----------------------------------------
    def load_model(
        self,
        version: str,
        factory: Callable[[], MultiTaskModel],
    ) -> MultiTaskModel:
        """Construct a model and restore a version's verified parameters.

        ``factory`` builds an architecture-compatible empty model; the
        loaded parameters are digest-checked against the manifest entry,
        so the returned model is bit-exactly the published one.
        """
        entry = self.get(version)
        model = factory()
        load_checkpoint(model, self.blob_path(entry.params_digest))
        actual = model_digest(model)
        if actual != entry.params_digest:
            raise RegistryCorruptError(
                f"loaded parameters for {version} hash to {actual}, "
                f"manifest records {entry.params_digest}"
            )
        return model

    def load_champion(
        self, factory: Callable[[], MultiTaskModel]
    ) -> Optional[MultiTaskModel]:
        champion = self.champion
        if champion is None:
            return None
        return self.load_model(champion.version, factory)

    # -- maintenance ----------------------------------------------------
    def fsck(self) -> Dict[str, List[str]]:
        """Audit the store; returns and sweeps orphans, reports corruption.

        * ``orphaned`` -- blobs (and stranded ``*.tmp`` files from a
          kill mid-write) no manifest entry references; deleted.
        * ``corrupt`` -- versions whose blob is missing or fails its
          digest; reported, never deleted (an operator decision).
        """
        referenced = {
            self.blob_path(ModelVersion.from_dict(v).params_digest).name
            for v in self._manifest["versions"].values()
        }
        orphaned: List[str] = []
        for path in sorted(self.blob_dir.glob("*")):
            if path.name not in referenced:
                orphaned.append(path.name)
                path.unlink(missing_ok=True)
        tmp = self.manifest_path.with_name(self.manifest_path.name + ".tmp")
        if tmp.exists():
            orphaned.append(tmp.name)
            tmp.unlink(missing_ok=True)
        corrupt: List[str] = []
        for entry in self.versions():
            try:
                self._read_blob_state(entry.params_digest)
            except RegistryCorruptError:
                corrupt.append(entry.version)
        if orphaned or corrupt:
            log_event(
                logger, "fsck", orphaned=len(orphaned), corrupt=len(corrupt)
            )
        return {"orphaned": orphaned, "corrupt": corrupt}
