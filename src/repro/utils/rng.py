"""Deterministic random-number-generator management.

Every stochastic component (initializers, dropout, data generators,
simulators) receives an explicit ``numpy.random.Generator``.  These
helpers derive independent child generators from a single experiment
seed so that runs are reproducible and components do not share streams.
"""

from __future__ import annotations

from typing import List

import numpy as np


def rng_from_seed(seed: int) -> np.random.Generator:
    """Create a generator from an integer seed."""
    return np.random.default_rng(seed)


def spawn_rngs(seed: int, count: int) -> List[np.random.Generator]:
    """Derive ``count`` statistically independent generators from ``seed``.

    Uses ``SeedSequence.spawn`` so the children are independent streams
    regardless of how many draws each consumes.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    sequence = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(count)]
