"""Thin wrapper around :mod:`logging` with a library-wide namespace."""

from __future__ import annotations

import logging

_FORMAT = "%(asctime)s %(name)s %(levelname)s %(message)s"


def get_logger(name: str) -> logging.Logger:
    """Return a logger under the ``repro`` namespace.

    Handlers are configured once at the root ``repro`` logger; library
    code never calls ``basicConfig`` so applications keep control.
    """
    if not name.startswith("repro"):
        name = f"repro.{name}"
    return logging.getLogger(name)


def enable_console_logging(level: int = logging.INFO) -> None:
    """Opt-in console logging for scripts and examples."""
    root = logging.getLogger("repro")
    if not root.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter(_FORMAT))
        root.addHandler(handler)
    root.setLevel(level)
