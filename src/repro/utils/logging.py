"""Thin wrapper around :mod:`logging` with a library-wide namespace."""

from __future__ import annotations

import logging

_FORMAT = "%(asctime)s %(name)s %(levelname)s %(message)s"


def get_logger(name: str) -> logging.Logger:
    """Return a logger under the ``repro`` namespace.

    Handlers are configured once at the root ``repro`` logger; library
    code never calls ``basicConfig`` so applications keep control.
    """
    if not name.startswith("repro"):
        name = f"repro.{name}"
    return logging.getLogger(name)


def log_event(
    logger: logging.Logger,
    event: str,
    level: int = logging.INFO,
    **fields,
) -> None:
    """Emit one structured ``key=value`` event line.

    Reliability code logs machine-parseable events (checkpoint saves,
    guard trips, fallback engagements) so post-mortems can grep a
    single stable format: ``event=loss_guard_trip epoch=3 reason=...``.
    Floats are compacted to 6 significant digits; field order is the
    caller's keyword order.
    """
    parts = [f"event={event}"]
    for key, value in fields.items():
        if isinstance(value, float):
            value = f"{value:.6g}"
        parts.append(f"{key}={value}")
    logger.log(level, " ".join(parts))


def enable_console_logging(level: int = logging.INFO) -> None:
    """Opt-in console logging for scripts and examples."""
    root = logging.getLogger("repro")
    if not root.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter(_FORMAT))
        root.addHandler(handler)
    root.setLevel(level)
