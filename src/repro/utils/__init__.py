"""Small shared utilities: seeding helpers and progress logging."""

from repro.utils.rng import spawn_rngs, rng_from_seed
from repro.utils.logging import get_logger, log_event

__all__ = ["spawn_rngs", "rng_from_seed", "get_logger", "log_event"]
