"""Small shared utilities: seeding, hashing, and progress logging."""

from repro.utils.rng import spawn_rngs, rng_from_seed
from repro.utils.hashing import stable_bucket, stable_fraction, stable_hash64
from repro.utils.logging import get_logger, log_event

__all__ = [
    "spawn_rngs",
    "rng_from_seed",
    "stable_bucket",
    "stable_fraction",
    "stable_hash64",
    "get_logger",
    "log_event",
]
