"""Deterministic traffic-splitting hashes.

Python's builtin ``hash`` is randomized per process, and numpy RNGs are
stateful -- neither gives the property a traffic splitter needs: the
same key always lands in the same bucket, in every process, on every
run, with no coordination.  These helpers derive that assignment from
SHA-256 over ``"<salt>:<key>"``, so the canary router
(:mod:`repro.lifecycle.canary`) and the A/B harness
(:mod:`repro.simulation.ab_test`) agree on who sees what by
construction.
"""

from __future__ import annotations

import hashlib

_HASH_BITS = 64
_HASH_SPACE = float(1 << _HASH_BITS)


def stable_hash64(key: object, salt: int = 0) -> int:
    """First 64 bits of ``sha256(f"{salt}:{key}")`` as an unsigned int."""
    digest = hashlib.sha256(f"{salt}:{key}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def stable_fraction(key: object, salt: int = 0) -> float:
    """Deterministic uniform-ish value in ``[0, 1)`` for one key."""
    return stable_hash64(key, salt) / _HASH_SPACE


def stable_bucket(key: object, buckets: int, salt: int = 0) -> int:
    """Deterministic bucket index in ``[0, buckets)`` for one key."""
    if buckets < 1:
        raise ValueError(f"buckets must be >= 1, got {buckets}")
    return stable_hash64(key, salt) % buckets
