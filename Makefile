# Convenience targets for the DCMT reproduction.

.PHONY: install test bench report quickstart lint-clean

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

report:
	dcmt-experiments report --out report/ --scale 0.5 --seeds 0 1

quickstart:
	python examples/quickstart.py

# Regenerate the committed result transcripts.
outputs:
	pytest tests/ 2>&1 | tee test_output.txt
	pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt
