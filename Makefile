# Convenience targets for the DCMT reproduction.

.PHONY: install test bench report quickstart lint-clean verify-robustness

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

# Every test tagged `robustness`: degenerate-batch hardening plus the
# reliability subsystem (checkpoint/resume, guards, chaos serving).
# Works from a clean checkout (no install needed).
verify-robustness:
	PYTHONPATH=src pytest -m robustness tests/

bench:
	pytest benchmarks/ --benchmark-only

report:
	dcmt-experiments report --out report/ --scale 0.5 --seeds 0 1

quickstart:
	python examples/quickstart.py

# Regenerate the committed result transcripts.
outputs:
	pytest tests/ 2>&1 | tee test_output.txt
	pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt
