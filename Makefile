# Convenience targets for the DCMT reproduction.

.PHONY: install test bench bench-all report quickstart lint lint-clean verify verify-robustness verify-callbacks verify-ingest verify-lifecycle verify-fleet verify-plan verify-stream verify-parallel verify-month

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

# Static checks (ruff, configured in pyproject.toml).  Skips cleanly
# when ruff is not installed so `make verify` works in minimal
# environments; a real lint failure still fails the target.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src/ tests/ examples/ benchmarks/; \
	else \
		echo "ruff not installed; skipping lint"; \
	fi

# The CI gate: lint, the robustness, ingest, lifecycle, fleet, and
# plan lanes, then the full tier-1 suite from a clean checkout --
# every PR runs all of it.
verify: lint verify-robustness verify-ingest verify-lifecycle verify-fleet verify-plan verify-stream verify-parallel verify-month
	PYTHONPATH=src python -m pytest -x -q tests/

# Every test tagged `robustness`: degenerate-batch hardening plus the
# reliability subsystem (checkpoint/resume, guards, chaos serving).
# Works from a clean checkout (no install needed).
verify-robustness:
	PYTHONPATH=src pytest -m robustness tests/

# Every test tagged `ingest`: the dirty-data quarantine pipeline
# (classification, repair policies, error budget, report provenance).
verify-ingest:
	PYTHONPATH=src pytest -m ingest tests/

# Every test tagged `callbacks`: the training-engine hook protocol
# (ordering, vetoes, LR scheduling, checkpoint metadata).
verify-callbacks:
	PYTHONPATH=src pytest -m callbacks tests/

# Every test tagged `lifecycle`: the model registry, promotion gate,
# canary rollout, and the seeded end-to-end chaos drill.
verify-lifecycle:
	PYTHONPATH=src pytest -m lifecycle tests/

# Every test tagged `fleet`: replicated-serving routing and hedging,
# fleet health quorum, and the seeded replica-loss chaos drills.
verify-fleet:
	PYTHONPATH=src pytest -m fleet tests/

# Every test tagged `plan`: compiled execution-plan parity (bit-exact
# vs eager across models, optimizers, checkpoints) and the
# shape-signature fallback policy.
verify-plan:
	PYTHONPATH=src pytest -m plan tests/

# Every test tagged `stream`: the out-of-core data path (chunked CSV
# source bounded-memory invariant, streaming-vs-in-memory parity,
# mid-epoch resume, streamed metrics, delayed-feedback correction).
verify-stream:
	PYTHONPATH=src pytest -m stream tests/

# Every test tagged `parallel`: the supervised data-parallel worker
# pool (bit-exact pool-vs-serial parity, deadline/heartbeat
# supervision, graceful shard degradation, trainer chaos drills).
verify-parallel:
	PYTHONPATH=src pytest -m parallel tests/

# Every test tagged `month`: the deterministic production-month
# simulation (seeded drift schedules, transcript bit-identity,
# confounder-shift detection, managed-vs-strawmen oracle regret).
verify-month:
	PYTHONPATH=src pytest -m month tests/

# Throughput-only benches (dense/sparse training + inference); writes
# BENCH_throughput.json at the repo root with measured rows/s, the
# speedup over the pre-optimisation engine, and a profiled op breakdown.
bench:
	PYTHONPATH=src pytest benchmarks/test_throughput.py --benchmark-only -q

# The full benchmark suite (paper tables/figures + throughput).
bench-all:
	pytest benchmarks/ --benchmark-only

report:
	dcmt-experiments report --out report/ --scale 0.5 --seeds 0 1

quickstart:
	python examples/quickstart.py

# Regenerate the committed result transcripts.
outputs:
	pytest tests/ 2>&1 | tee test_output.txt
	pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt
